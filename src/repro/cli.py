"""Command-line interface: regenerate any figure or ablation.

    python -m repro fig2 --replications 5 --jobs 4
    python -m repro fig5 --no-cache
    python -m repro a1 --cache-dir /tmp/repro-cache
    python -m repro all --replications 3
    python -m repro fig2 --sanitize      # run with invariant checking
    python -m repro lint                 # static lint (repro.analyze)
    python -m repro verify               # bounded model check (repro.verify)
    python -m repro validate-model --quick   # sim-vs-model divergence
    python -m repro sweep --prune-model      # analytically pruned sweep

Each command runs the corresponding sweep from :mod:`repro.bench` and
prints the text table the benchmark harness would print.  Sweeps
execute on the :mod:`repro.exec` engine: ``--jobs`` (or ``REPRO_JOBS``)
fans the seeded run units out to a process pool, and the on-disk result
cache — enabled by default under ``~/.cache/repro`` — means re-running
a figure only computes missing points.  The per-command trailer
reports how many units were computed vs served from cache.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from .analyze.sanitizer import ENV_VAR, Sanitizer, install_sanitizer
from .bench import (format_dbsize, format_deadlock_policies,
                    format_fault_ablation,
                    format_fig2, format_fig3, format_fig4, format_fig5,
                    format_fig6, format_inheritance,
                    format_io_models, format_model_vs_sim,
                    format_protocol_suite,
                    format_rw_vs_exclusive,
                    format_snapshot_reads,
                    format_temporal, run_dbsize_sweep,
                    run_deadlock_policies, run_fault_ablation,
                    run_fig2_fig3, run_fig4,
                    run_io_models, run_model_vs_sim,
                    run_fig5, run_fig6, run_inheritance_vs_ceiling,
                    run_protocol_suite,
                    run_rw_vs_exclusive, run_snapshot_reads,
                    run_temporal_staleness)
from .protocols import REGISTRY, UnknownProtocolError
from .exec import (ResultCache, TextProgress, default_cache_dir,
                   resolve_jobs, session_counters)


@dataclasses.dataclass(frozen=True)
class ExecOptions:
    """Engine knobs threaded from the command line into the sweeps."""

    jobs: Optional[int] = None
    cache: Optional[ResultCache] = None
    progress: Optional[TextProgress] = None

    def kwargs(self) -> dict:
        return {"jobs": self.jobs, "cache": self.cache,
                "progress": self.progress}


def _fig2(replications: int, opts: ExecOptions) -> str:
    return format_fig2(run_fig2_fig3(replications=replications,
                                     **opts.kwargs()))


def _fig3(replications: int, opts: ExecOptions) -> str:
    return format_fig3(run_fig2_fig3(replications=replications,
                                     **opts.kwargs()))


def _fig23(replications: int, opts: ExecOptions) -> str:
    series = run_fig2_fig3(replications=replications, **opts.kwargs())
    return format_fig2(series) + "\n\n" + format_fig3(series)


def _fig4(replications: int, opts: ExecOptions) -> str:
    return format_fig4(run_fig4(replications=replications,
                                **opts.kwargs()))


def _fig5(replications: int, opts: ExecOptions) -> str:
    return format_fig5(run_fig5(replications=replications,
                                **opts.kwargs()))


def _fig6(replications: int, opts: ExecOptions) -> str:
    return format_fig6(run_fig6(replications=replications,
                                **opts.kwargs()))


def _a1(replications: int, opts: ExecOptions) -> str:
    return format_rw_vs_exclusive(
        run_rw_vs_exclusive(replications=replications, **opts.kwargs()))


def _a2(replications: int, opts: ExecOptions) -> str:
    return format_inheritance(
        run_inheritance_vs_ceiling(replications=replications,
                                   **opts.kwargs()))


def _a3(replications: int, opts: ExecOptions) -> str:
    return format_dbsize(run_dbsize_sweep(replications=replications,
                                          **opts.kwargs()))


def _a4(replications: int, opts: ExecOptions) -> str:
    # A4 instruments the simulation with an in-process sampler and
    # cannot fan out; engine knobs are intentionally not passed.
    return format_temporal(
        run_temporal_staleness(replications=max(1, replications // 2)))


def _a6(replications: int, opts: ExecOptions) -> str:
    return format_snapshot_reads(
        run_snapshot_reads(replications=replications, **opts.kwargs()))


def _a7(replications: int, opts: ExecOptions) -> str:
    return format_io_models(run_io_models(replications=replications,
                                          **opts.kwargs()))


def _a5(replications: int, opts: ExecOptions) -> str:
    # A5 pokes the victim policy onto a hand-built system; serial.
    return format_deadlock_policies(
        run_deadlock_policies(replications=replications))


def _a8(replications: int, opts: ExecOptions) -> str:
    return format_fault_ablation(
        run_fault_ablation(replications=replications, **opts.kwargs()))


def _model(replications: int, opts: ExecOptions) -> str:
    return format_model_vs_sim(
        run_model_vs_sim(replications=replications, **opts.kwargs()))


def _protocol_suite(replications: int, opts: ExecOptions) -> str:
    return format_protocol_suite(
        run_protocol_suite(replications=replications, **opts.kwargs()))


COMMANDS: Dict[str, Tuple[Callable[[int, ExecOptions], str], str]] = {
    "fig2": (_fig2, "Figure 2 - throughput vs transaction size"),
    "fig3": (_fig3, "Figure 3 - %% deadline-missing vs size"),
    "fig23": (_fig23, "Figures 2+3 in one sweep"),
    "fig4": (_fig4, "Figure 4 - local/global throughput ratio"),
    "fig5": (_fig5, "Figure 5 - global/local missing ratio vs delay"),
    "fig6": (_fig6, "Figure 6 - %% missing vs transaction mix"),
    "a1": (_a1, "Ablation A1 - rw vs exclusive lock semantics"),
    "a2": (_a2, "Ablation A2 - priority inheritance vs ceiling"),
    "a3": (_a3, "Ablation A3 - database size sweep"),
    "a4": (_a4, "Ablation A4 - replica staleness vs delay"),
    "a5": (_a5, "Ablation A5 - 2PL deadlock policies"),
    "a6": (_a6, "Ablation A6 - lock-free snapshot reads"),
    "a7": (_a7, "Ablation A7 - bounded disks vs parallel I/O"),
    "a8": (_a8, "Ablation A8 - fault injection: loss and crashes"),
    "model": (_model, "Analytic model vs simulation overlay"),
    "protocols": (_protocol_suite,
                  "Protocol suite - mpcp/dpcp/fmlp vs C/Cx"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the figures and ablations of Son & "
                    "Chang (ICDCS 1990).")
    choices = list(COMMANDS) + ["all", "lint", "verify", "faults",
                                "run", "trace", "metrics",
                                "bench", "validate-model", "sweep"]
    parser.add_argument("command", choices=choices,
                        help="which figure/ablation to run "
                             "('all' runs everything; 'lint' runs the "
                             "static analyzer; 'verify' explores "
                             "protocol schedules exhaustively on "
                             "small configs; 'faults' manages fault "
                             "plans; 'run' runs one distributed sweep "
                             "point; 'trace' inspects trace artifacts; "
                             "'bench' runs the hot-path microbenchmarks; "
                             "'validate-model' cross-validates the "
                             "analytic model against the simulator; "
                             "'sweep' runs a protocol/size grid, "
                             "optionally model-pruned "
                             "— see 'repro <cmd> -h')")
    parser.add_argument("--replications", type=int, default=5,
                        help="seeded runs averaged per sweep point "
                             "(paper used 10; default 5)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the sweep's run "
                             "units (default: REPRO_JOBS or 1; 1 runs "
                             "serially in-process)")
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory (default: "
                             "REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--progress", action="store_true",
                        help="force the live progress/ETA line even "
                             "when stderr is not a TTY")
    parser.add_argument("--sanitize", action="store_true",
                        help="enable the runtime protocol sanitizer "
                             "(strict: abort on the first invariant "
                             "violation); equivalent to REPRO_SANITIZE=1")
    return parser


def _exec_options(args: argparse.Namespace) -> ExecOptions:
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    progress = None
    if args.progress or sys.stderr.isatty():
        progress = TextProgress(sys.stderr)
    return ExecOptions(jobs=args.jobs, cache=cache, progress=progress)


def _faults_main(argv: List[str]) -> int:
    """``repro faults validate plan.json`` — check a plan off-line."""
    parser = argparse.ArgumentParser(
        prog="repro faults",
        description="Inspect and validate declarative fault plans.")
    sub = parser.add_subparsers(dest="action")
    validate = sub.add_parser(
        "validate", help="parse + validate a fault-plan JSON file")
    validate.add_argument("plan", help="path to the plan JSON")
    validate.add_argument("--sites", type=int, default=None,
                          help="also check crash/partition site ids "
                               "against this site count")
    args = parser.parse_args(argv)
    if args.action != "validate":
        parser.print_help(sys.stderr)
        return 2
    from .faults import load_plan
    try:
        plan = load_plan(args.plan)
        if args.sites is not None:
            plan.validate(n_sites=args.sites)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: invalid fault plan: {exc}", file=sys.stderr)
        return 1
    print(f"{args.plan}: OK (active={plan.active}, "
          f"recovery={plan.needs_recovery}, "
          f"loss={plan.loss_rate}, jitter={plan.delay_jitter}, "
          f"dup={plan.duplicate_rate}, reorder={plan.reorder_rate}, "
          f"crashes={len(plan.crashes)}, "
          f"partitions={len(plan.partitions)})")
    return 0


def _run_main(argv: List[str]) -> int:
    """``repro run`` — one distributed configuration, optionally under
    a fault plan, averaged over seeded replications."""
    parser = argparse.ArgumentParser(
        prog="repro run",
        description="Run the calibrated distributed configuration at "
                    "one sweep point, optionally under a fault plan.")
    parser.add_argument("--mode", choices=("local", "global", "both"),
                        default="both")
    parser.add_argument("--protocol", default="C",
                        help="concurrency-control protocol (registry "
                             "name or alias; default %(default)s)")
    parser.add_argument("--faults", default=None, metavar="PLAN.json",
                        help="fault-plan JSON to inject")
    parser.add_argument("--comm-delay", type=float, default=2.0)
    parser.add_argument("--read-only-fraction", type=float, default=0.5)
    parser.add_argument("--transactions", type=int, default=120)
    parser.add_argument("--replications", type=int, default=3)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--progress", action="store_true")
    parser.add_argument("--sanitize", action="store_true",
                        help="enable the runtime protocol sanitizer")
    parser.add_argument("--trace", nargs="?", const="", default=None,
                        metavar="DIR",
                        help="write per-unit trace artifacts "
                             "(*.trace.jsonl + Chrome *.trace.json) "
                             "to DIR (default: <cache-dir>/traces); "
                             "disables the result cache so every unit "
                             "is re-run under the tracer")
    parser.add_argument("--profile", action="store_true",
                        help="with --trace: append the hottest-lock / "
                             "longest-inversion profile trailer")
    parser.add_argument("--metrics", nargs="?", const="", default=None,
                        metavar="DIR",
                        help="write per-unit metrics artifacts "
                             "(*.metrics.jsonl time series) to DIR "
                             "(default: <cache-dir>/metrics); disables "
                             "the result cache so every unit is re-run "
                             "under the metrics registry")
    parser.add_argument("--engine", choices=("reference", "turbo"),
                        default="reference",
                        help="event-core engine (default "
                             "%(default)s); results are bitwise "
                             "identical, turbo is the throughput core "
                             "(REPRO_ENGINE overrides)")
    args = parser.parse_args(argv)
    if args.replications < 1 or args.transactions < 1:
        print("error: --replications and --transactions must be >= 1",
              file=sys.stderr)
        return 2
    if args.profile and args.trace is None:
        print("error: --profile requires --trace", file=sys.stderr)
        return 2
    try:
        protocol = REGISTRY.resolve(args.protocol).name
    except UnknownProtocolError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.sanitize:
        os.environ[ENV_VAR] = "1"
        install_sanitizer(Sanitizer(strict=True))
    plan = None
    if args.faults is not None:
        from .faults import load_plan
        try:
            plan = load_plan(args.faults)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"error: invalid fault plan: {exc}", file=sys.stderr)
            return 1
    from .bench import distributed_config
    from .core.experiment import replicate
    opts = _exec_options(args)
    trace_dir = None
    if args.trace is not None:
        from .trace.tracer import ENV_TRACE_DIR
        trace_dir = args.trace or os.path.join(
            args.cache_dir or default_cache_dir(), "traces")
        os.makedirs(trace_dir, exist_ok=True)
        os.environ[ENV_TRACE_DIR] = trace_dir
        # Cached rows would skip the traced re-run: force computation.
        opts = dataclasses.replace(opts, cache=None)
    metrics_dir = None
    if args.metrics is not None:
        from .telemetry.registry import ENV_METRICS_DIR
        metrics_dir = args.metrics or os.path.join(
            args.cache_dir or default_cache_dir(), "metrics")
        os.makedirs(metrics_dir, exist_ok=True)
        os.environ[ENV_METRICS_DIR] = metrics_dir
        # Cached rows would skip the metered re-run: force computation.
        opts = dataclasses.replace(opts, cache=None)
    modes = (["local", "global"] if args.mode == "both"
             else [args.mode])
    shown = ("percent_missed", "throughput", "messages_sent",
             "messages_lost", "undeliverable", "ms_dropped",
             "max_staleness", "fault_downtime", "fault_availability")
    for mode in modes:
        config = distributed_config(
            mode, args.comm_delay, args.read_only_fraction,
            n_transactions=args.transactions)
        config = dataclasses.replace(config, protocol=protocol,
                                     engine=args.engine)
        if plan is not None:
            config = dataclasses.replace(config, faults=plan)
        try:
            config.validate()
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        row = replicate(config, replications=args.replications,
                        jobs=opts.jobs, cache=opts.cache,
                        progress=opts.progress)
        print(f"[{mode}] protocol={protocol} delay={args.comm_delay} "
              f"mix={args.read_only_fraction} "
              f"n={args.transactions} x{args.replications}")
        for key in shown:
            if key in row:
                print(f"  {key:<20} {row[key]:.6g}")
        for key in sorted(row):
            if key.startswith("fault_") and key not in shown \
                    and not key.endswith(("_std", "_ci95")):
                print(f"  {key:<20} {row[key]:.6g}")
        if trace_dir is not None:
            _print_trace_summary(config, trace_dir, args.profile)
        if metrics_dir is not None:
            _print_metrics_summary(config, metrics_dir)
        print()
    return 0


def _sweep_main(argv: List[str]) -> int:
    """``repro sweep`` — a protocol x size grid, optionally pruned.

    With ``--prune-model`` every grid point is scored by the analytic
    model first and only the best ``--keep-fraction`` is simulated;
    skipped points report the model's prediction, marked ``~``.
    """
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Sweep a protocol x transaction-size grid. "
                    "--prune-model scores every config analytically "
                    "(repro.model) and simulates only the top "
                    "fraction by --metric.")
    parser.add_argument("--protocols", "--protocol", dest="protocols",
                        default="C,P,L",
                        help="comma-separated protocol names or "
                             "aliases (default %(default)s); see "
                             "repro.protocols for the registry")
    parser.add_argument("--sizes", default="2,5,8,11,14,17,20",
                        help="comma-separated transaction sizes "
                             "(default %(default)s)")
    parser.add_argument("--metric", default="percent_missed",
                        help="summary metric to rank configs by "
                             "(default %(default)s)")
    parser.add_argument("--prune-model", action="store_true",
                        help="simulate only the best --keep-fraction "
                             "of the grid by the model's --metric "
                             "score; report the runs saved")
    parser.add_argument("--keep-fraction", type=float, default=0.4,
                        help="fraction of configs to simulate under "
                             "--prune-model (default %(default)s)")
    parser.add_argument("--best", choices=("min", "max"),
                        default="min",
                        help="whether lower or higher --metric scores "
                             "rank better (default %(default)s)")
    parser.add_argument("--replications", type=int, default=5)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--progress", action="store_true")
    parser.add_argument("--dashboard", action="store_true",
                        help="live multi-line TTY dashboard (unit "
                             "throughput, cache hits, host RSS, latest "
                             "summary row) plus a fleet-telemetry "
                             "trailer; degrades to plain lines off-TTY")
    parser.add_argument("--metrics", nargs="?", const="", default=None,
                        metavar="DIR",
                        help="write per-unit metrics artifacts "
                             "(*.metrics.jsonl) to DIR (default: "
                             "<cache-dir>/metrics); disables the "
                             "result cache")
    parser.add_argument("--engine", choices=("reference", "turbo"),
                        default="reference",
                        help="event-core engine (default "
                             "%(default)s); results are bitwise "
                             "identical (REPRO_ENGINE overrides)")
    args = parser.parse_args(argv)
    if args.replications < 1:
        print("error: --replications must be >= 1", file=sys.stderr)
        return 2
    if not 0.0 < args.keep_fraction <= 1.0:
        print("error: --keep-fraction must be in (0, 1]",
              file=sys.stderr)
        return 2
    try:
        sizes = [int(part) for part in args.sizes.split(",") if part]
    except ValueError:
        print(f"error: --sizes must be comma-separated integers, "
              f"got {args.sizes!r}", file=sys.stderr)
        return 2
    try:
        protocols = [REGISTRY.resolve(part).name
                     for part in args.protocols.split(",") if part]
    except UnknownProtocolError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not protocols or not sizes:
        print("error: need at least one protocol and one size",
              file=sys.stderr)
        return 2
    from .bench import single_site_config
    try:
        grid = [(protocol, size,
                 dataclasses.replace(single_site_config(protocol, size),
                                     engine=args.engine))
                for protocol in protocols for size in sizes]
        for __, __, config in grid:
            config.validate()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    opts = _exec_options(args)
    if args.metrics is not None:
        from .telemetry.registry import ENV_METRICS_DIR
        sweep_metrics_dir = args.metrics or os.path.join(
            args.cache_dir or default_cache_dir(), "metrics")
        os.makedirs(sweep_metrics_dir, exist_ok=True)
        os.environ[ENV_METRICS_DIR] = sweep_metrics_dir
        # Cached rows would skip the metered re-run: force computation.
        opts = dataclasses.replace(opts, cache=None)
    fleet = None
    if args.dashboard:
        from .exec import Dashboard, FleetTelemetry
        fleet = FleetTelemetry()
        opts = dataclasses.replace(opts,
                                   progress=Dashboard(sys.stderr))
    configs = [config for __, __, config in grid]
    header = (f"{'':>1}{'protocol':>9} {'size':>5} "
              f"{args.metric:>16} {'source':>7}")
    if args.prune_model:
        from .model import run_pruned_sweep
        try:
            result = run_pruned_sweep(
                configs, metric=args.metric,
                keep_fraction=args.keep_fraction, best=args.best,
                replications=args.replications, **opts.kwargs())
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        print(header)
        for (protocol, size, __), row in zip(grid, result.rows):
            marker = "~" if row["pruned"] else " "
            source = "model" if row["pruned"] else "sim"
            print(f"{marker}{protocol:>9} {size:>5} "
                  f"{row[args.metric]:>16.3f} {source:>7}")
        print(f"\n[pruned {result.n_skipped}/{result.n_configs} "
              f"configs ({result.saved_fraction:.0%} of simulation "
              f"runs saved), kept top {len(result.kept)} by model "
              f"{args.metric} ({args.best})]")
        return 0
    from .core.experiment import replicate_many
    rows = replicate_many(configs, replications=args.replications,
                          fleet=fleet, **opts.kwargs())
    print(header)
    for (protocol, size, __), row in zip(grid, rows):
        if args.metric not in row:
            print(f"error: simulator summary has no metric "
                  f"{args.metric!r}", file=sys.stderr)
            return 2
        print(f" {protocol:>9} {size:>5} "
              f"{row[args.metric]:>16.3f} {'sim':>7}")
    if fleet is not None:
        from .exec import format_fleet_report
        print()
        print(format_fleet_report(fleet.report()))
    return 0


def _print_trace_summary(config, trace_dir: str,
                         profile: bool) -> None:
    """Summarize the first replication's trace artifact for one mode.

    The first unit of a ``replicate`` call runs ``config`` with seed
    ``base_seed`` (1), so its fingerprint locates its artifact.
    """
    from .exec.fingerprint import config_fingerprint
    from .trace.cli import profile_text, summary_text
    from .trace.export import load_jsonl
    from .trace.timeline import reconstruct
    fp = config_fingerprint(dataclasses.replace(config, seed=1))
    artifact = os.path.join(trace_dir, fp + ".trace.jsonl")
    if not os.path.exists(artifact):
        print(f"  (no trace artifact at {artifact})")
        return
    meta, events = load_jsonl(artifact)
    run = reconstruct(events, dropped=int(meta.get("dropped", 0)))
    print(f"[trace] first replication artifact: {artifact}")
    print(summary_text(run, top=10))
    if profile:
        print(profile_text(run))


def _print_metrics_summary(config, metrics_dir: str) -> None:
    """Summarize the first replication's metrics artifact for one mode.

    Same fingerprint convention as the trace summary: the first unit
    of a ``replicate`` call runs ``config`` with seed ``base_seed``
    (1).
    """
    from .exec.fingerprint import config_fingerprint
    from .telemetry.export import load_metrics_jsonl
    from .telemetry.export import summary_text as metrics_summary_text
    fp = config_fingerprint(dataclasses.replace(config, seed=1))
    artifact = os.path.join(metrics_dir, fp + ".metrics.jsonl")
    if not os.path.exists(artifact):
        print(f"  (no metrics artifact at {artifact})")
        return
    print(f"[metrics] first replication artifact: {artifact}")
    print(metrics_summary_text(load_metrics_jsonl(artifact)))


def main(argv: Optional[List[str]] = None) -> int:
    raw = sys.argv[1:] if argv is None else list(argv)
    if raw and raw[0] == "lint":
        # Delegate everything after 'lint' to the analyzer's own parser
        # (it has its own options and exit-status contract).
        from .analyze.cli import main as lint_main
        return lint_main(raw[1:])
    if raw and raw[0] == "verify":
        from .verify.cli import main as verify_main
        return verify_main(raw[1:])
    if raw and raw[0] == "faults":
        return _faults_main(raw[1:])
    if raw and raw[0] == "trace":
        from .trace.cli import main as trace_main
        return trace_main(raw[1:])
    if raw and raw[0] == "metrics":
        from .telemetry.cli import main as metrics_main
        return metrics_main(raw[1:])
    if raw and raw[0] == "run":
        return _run_main(raw[1:])
    if raw and raw[0] == "bench":
        from .bench.micro import main as bench_main
        return bench_main(raw[1:])
    if raw and raw[0] == "validate-model":
        from .model.validate import main as validate_main
        return validate_main(raw[1:])
    if raw and raw[0] == "sweep":
        return _sweep_main(raw[1:])
    args = build_parser().parse_args(raw)
    if args.replications < 1:
        print("error: --replications must be >= 1", file=sys.stderr)
        return 2
    if args.jobs is not None and args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.sanitize:
        # Via the environment so process-pool workers inherit it too;
        # plus an in-process install so this process checks immediately.
        os.environ[ENV_VAR] = "1"
        install_sanitizer(Sanitizer(strict=True))
    opts = _exec_options(args)
    names = list(COMMANDS) if args.command == "all" else [args.command]
    if args.command == "all":
        names.remove("fig2")   # fig23 covers both in one sweep
        names.remove("fig3")
    for name in names:
        runner, __ = COMMANDS[name]
        # perf_counter, not time.time: the trailer measures elapsed
        # duration, and wall clock jumps under NTP adjustment.
        started = time.perf_counter()
        before = session_counters()
        print(runner(args.replications, opts))
        delta = {key: value - before[key]
                 for key, value in session_counters().items()}
        trailer = (f"[{name}: {time.perf_counter() - started:.1f}s, "
                   f"{args.replications} replications")
        if delta["units"]:
            trailer += (f", jobs={resolve_jobs(args.jobs)}, "
                        f"{delta['units']} units, "
                        f"{delta['computed']} computed, "
                        f"{delta['cache_hits']} cache hits")
            if delta["retries"]:
                trailer += f", {delta['retries']} retried"
            if delta.get("messages_lost"):
                trailer += f", {delta['messages_lost']} msgs lost"
            if delta["failures"]:
                trailer += f", {delta['failures']} FAILED"
        print(trailer + "]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
