"""Model-guided sweep pruning: simulate only what the model ranks.

``repro sweep --prune-model`` scores every configuration of a sweep
analytically (microseconds each), keeps the top fraction by the chosen
metric, and hands only the survivors to the execution engine via
:func:`repro.exec.plan_subset`.  Skipped configs still appear in the
result — carrying the model's prediction and a ``pruned`` flag — so
the output stays one row per requested config.

Because :func:`plan_subset` preserves the full-batch group numbering,
the surviving units' cache fingerprints are identical to an unpruned
sweep's: a later full run reuses every row the pruned run produced.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence

from ..core.metrics import aggregate_runs
from ..exec import group_rows, plan_subset, run_units
from .response import predict_summary


@dataclasses.dataclass(frozen=True)
class PruneResult:
    """Outcome of a model-pruned sweep."""

    #: Ranking metric (a simulator summary key, e.g. percent_missed).
    metric: str
    #: Model score per requested config, in input order.
    scores: List[float]
    #: Indices (into the request) that were actually simulated.
    kept: List[int]
    #: One row per requested config: simulated summaries for kept
    #: configs, model predictions (with ``pruned: True``) for skipped.
    rows: List[Dict[str, float]]
    replications: int

    @property
    def n_configs(self) -> int:
        return len(self.scores)

    @property
    def n_skipped(self) -> int:
        return self.n_configs - len(self.kept)

    @property
    def saved_fraction(self) -> float:
        """Fraction of simulation runs the model pruned away."""
        if not self.n_configs:
            return 0.0
        return self.n_skipped / self.n_configs


def model_scores(configs: Sequence[object],
                 metric: str = "percent_missed") -> List[float]:
    """Score each config analytically by one summary metric."""
    scores = []
    for config in configs:
        summary = predict_summary(config)
        if metric not in summary:
            raise KeyError(f"model does not predict {metric!r}; "
                           f"choose one of {sorted(summary)}")
        scores.append(float(summary[metric]))
    return scores


def select_configs(scores: Sequence[float],
                   keep_fraction: float = 0.4,
                   best: str = "min") -> List[int]:
    """Indices of the best-scoring fraction, in input order.

    ``best="min"`` keeps the lowest scores (miss rate, blocking time);
    ``best="max"`` keeps the highest (throughput).  At least one config
    always survives; ties are broken by input order, so the selection
    is deterministic.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    if best not in ("min", "max"):
        raise ValueError("best must be 'min' or 'max'")
    n_keep = max(1, math.ceil(len(scores) * keep_fraction))
    sign = 1.0 if best == "min" else -1.0
    ranked = sorted(range(len(scores)),
                    key=lambda i: (sign * scores[i], i))
    return sorted(ranked[:n_keep])


def run_pruned_sweep(configs: Sequence[object],
                     metric: str = "percent_missed",
                     keep_fraction: float = 0.4, best: str = "min",
                     replications: int = 10, base_seed: int = 1, *,
                     jobs: Optional[int] = None, cache=None,
                     progress=None) -> PruneResult:
    """Score analytically, simulate the survivors, merge the rows."""
    configs = list(configs)
    scores = model_scores(configs, metric=metric)
    kept = select_configs(scores, keep_fraction=keep_fraction,
                          best=best)
    units = plan_subset(configs, kept, replications=replications,
                        base_seed=base_seed)
    result = run_units(units, jobs=jobs, cache=cache,
                       progress=progress).require_success()
    simulated = {
        group: aggregate_runs(group_rows(units, result.rows, group))
        for group in kept}
    rows: List[Dict[str, float]] = []
    for index, config in enumerate(configs):
        if index in simulated:
            row = dict(simulated[index])
            row["pruned"] = False
        else:
            row = dict(predict_summary(config))
            row["pruned"] = True
        row["model_score"] = scores[index]
        rows.append(row)
    return PruneResult(metric=metric, scores=scores, kept=kept,
                       rows=rows, replications=replications)
