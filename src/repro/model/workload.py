"""Config → model adapter: workload statistics the analysis runs on.

:class:`WorkloadModel` derives, from the exact dataclasses the
simulator consumes (:mod:`repro.core.config`), every aggregate the
closed-form analysis needs: arrival rate, the transaction-size
distribution and its moments, per-transaction service demand,
object-access probability, deadline allowances, and the run-horizon
stretch factor.  Keeping the derivation in one adapter means the model
and the simulator can never disagree about what a configuration
*means* — both read the same fields.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple, Union

from ..core.config import DistributedConfig, SingleSiteConfig
from ..protocols import REGISTRY

AnyConfig = Union[SingleSiteConfig, DistributedConfig]

#: Protocols analysed with the ceiling (pipeline) model — every
#: registered plugin whose ``model_family`` is ``ceiling``: the
#: paper's C, its exclusive-semantics ablation Cx (under the analysis
#: both serialize lock holding the same way) and dpcp (per-partition
#: ceiling agents; on one site the partition is everything).
CEILING_PROTOCOLS = REGISTRY.model_family_names(
    "ceiling")  # noqa: RPL009 - model family, not a blocking category
#: Protocols analysed with the 2PL contention fixed point — plugins
#: whose ``model_family`` is ``twopl``: L, P, PI, plus the queue-lock
#: suite (mpcp, fmlp).  Queue ordering and inheritance reorder *who*
#: waits, which moves the miss distribution but not the mean
#: contention the model predicts.
TWOPL_PROTOCOLS = REGISTRY.model_family_names("twopl")


@dataclasses.dataclass(frozen=True)
class WorkloadModel:
    """Derived workload statistics for one configuration."""

    #: Protocol tag; one of CEILING_PROTOCOLS or TWOPL_PROTOCOLS.
    protocol: str
    #: "single", "local" or "global".
    mode: str
    n_transactions: int
    n_sites: int
    db_size: int
    #: Systemwide arrival rate (transactions per virtual-time unit).
    arrival_rate: float
    #: (size, probability) pairs of the transaction-size distribution.
    size_classes: Tuple[Tuple[int, float], ...]
    read_only_fraction: float
    write_fraction: float
    slack_factor: float
    per_object_time: float
    cpu_per_object: float
    io_per_object: float
    commit_cpu: float
    apply_cpu: float
    comm_delay: float

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: AnyConfig) -> "WorkloadModel":
        """Derive the model's view of ``config``.

        Accepts both config families; the distributed adapter records
        the mode and communication delay the per-protocol analysis
        branches on.
        """
        if isinstance(config, SingleSiteConfig):
            mode = "single"
            n_sites = 1
            comm_delay = 0.0
        elif isinstance(config, DistributedConfig):
            mode = config.mode
            n_sites = config.n_sites
            comm_delay = config.comm_delay
        else:
            raise TypeError(f"unknown config type "
                            f"{type(config).__name__}; expected "
                            f"SingleSiteConfig or DistributedConfig")
        config.validate()
        workload = config.workload
        costs = config.costs
        return cls(
            # Canonicalized through the registry so aliases ("pcp")
            # classify identically to their protocol ("C").
            protocol=REGISTRY.resolve(
                getattr(config, "protocol", "C")).name,
            mode=mode,
            n_transactions=workload.n_transactions,
            n_sites=n_sites,
            db_size=config.db_size,
            arrival_rate=1.0 / workload.mean_interarrival,
            size_classes=_size_classes(workload.transaction_size,
                                       workload.size_jitter),
            read_only_fraction=workload.read_only_fraction,
            write_fraction=workload.write_fraction,
            slack_factor=config.timing.slack_factor,
            per_object_time=costs.per_object_time,
            cpu_per_object=costs.cpu_per_object,
            io_per_object=costs.io_per_object,
            commit_cpu=costs.commit_cpu,
            apply_cpu=costs.apply_cpu,
            comm_delay=comm_delay,
        )

    # ------------------------------------------------------------------
    # size distribution moments
    # ------------------------------------------------------------------
    @property
    def mean_size(self) -> float:
        """E[size] over the uniform jittered size distribution."""
        return sum(size * p for size, p in self.size_classes)

    @property
    def second_moment_size(self) -> float:
        return sum(size * size * p for size, p in self.size_classes)

    # ------------------------------------------------------------------
    # demand and deadlines
    # ------------------------------------------------------------------
    def service_demand(self, size: float) -> float:
        """No-contention total service time of a ``size``-object txn
        (mirrors :meth:`repro.txn.manager.CostModel.service_demand`)."""
        return size * self.per_object_time + self.commit_cpu

    @property
    def mean_service(self) -> float:
        """E[S]: mean no-contention service demand per transaction."""
        return self.service_demand(self.mean_size)

    def deadline_allowance(self, size: float) -> float:
        """Deadline minus arrival for a ``size``-object transaction
        (the §3.3 proportional-deadline formula with zero load
        factor)."""
        return self.slack_factor * size * self.per_object_time

    @property
    def mean_allowance(self) -> float:
        return self.deadline_allowance(self.mean_size)

    @property
    def patience(self) -> float:
        """Mean slack a transaction can absorb waiting before its
        deadline fires: allowance minus its own service demand."""
        return max(self.mean_allowance - self.mean_service, 1e-9)

    # ------------------------------------------------------------------
    # arrival horizon
    # ------------------------------------------------------------------
    @property
    def arrival_span(self) -> float:
        """Expected length of the arrival window (open arrivals stop
        after ``n_transactions``)."""
        return self.n_transactions / self.arrival_rate

    @property
    def horizon_factor(self) -> float:
        """Run-length stretch from the drain tail.

        The simulator runs until the last admitted transaction leaves,
        so measured rates are averaged over roughly
        ``arrival_span + mean_allowance`` — the tail grants a finite
        run slightly more capacity per offered transaction than the
        steady-state rates suggest.
        """
        return 1.0 + self.mean_allowance / max(self.arrival_span, 1e-9)

    # ------------------------------------------------------------------
    # access probabilities
    # ------------------------------------------------------------------
    @property
    def access_probability(self) -> float:
        """P(a given transaction touches a given object) = E[size]/D."""
        return self.mean_size / self.db_size

    @property
    def write_op_fraction(self) -> float:
        """Fraction of all issued operations that take write locks."""
        return (1.0 - self.read_only_fraction) * self.write_fraction

    @property
    def conflict_factor(self) -> float:
        """P(two operations on the same object conflict) — a pair of
        lock requests is compatible only when both are reads."""
        q = self.write_op_fraction
        both_read = (1.0 - q) * (1.0 - q)
        return 1.0 - both_read

    @property
    def update_rate(self) -> float:
        """Systemwide arrival rate of update transactions."""
        return self.arrival_rate * (1.0 - self.read_only_fraction)


def _size_classes(size: int, jitter: int
                  ) -> Tuple[Tuple[int, float], ...]:
    """The generator draws sizes uniformly from
    [max(1, size - jitter), size + jitter]."""
    if jitter == 0:
        return ((size, 1.0),)
    low = max(1, size - jitter)
    high = size + jitter
    values: List[int] = list(range(low, high + 1))
    p = 1.0 / len(values)
    return tuple((value, p) for value in values)
