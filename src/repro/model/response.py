"""M/G/1-style response-time and deadline-miss estimation.

The public face of the analytic model: :func:`predict` maps a config
dataclass — the same object the simulator runs — to a
:class:`ModelPrediction` whose ``summary`` dict uses the *simulator's*
key names (``percent_missed``, ``throughput``, ``mean_blocked_time``,
``mean_response_time``), so model and simulation rows can be compared
field-for-field by :mod:`repro.model.validate`.

Cost: microseconds per configuration (a few hundred fixed-point or
chain iterations), against seconds per seeded simulation run — the
ratio that makes analytic pruning (:mod:`repro.model.prune`) pay off.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..constants import BLOCKING_CATEGORIES
from .blocking import BlockingPrediction, predict_blocking
from .workload import AnyConfig, WorkloadModel


@dataclasses.dataclass(frozen=True)
class ModelPrediction:
    """One configuration's analytic prediction."""

    workload: WorkloadModel
    blocking: BlockingPrediction
    #: Simulator-keyed aggregate predictions (see module docstring).
    summary: Dict[str, float]


def predict(config: AnyConfig) -> ModelPrediction:
    """Predict the summary statistics of ``config`` analytically."""
    workload = WorkloadModel.from_config(config)
    blocking = predict_blocking(workload)
    return ModelPrediction(workload=workload, blocking=blocking,
                           summary=_summary(workload, blocking))


def predict_summary(config: AnyConfig) -> Dict[str, float]:
    """Just the simulator-keyed summary dict of :func:`predict`."""
    return predict(config).summary


def _summary(workload: WorkloadModel,
             blocking: BlockingPrediction) -> Dict[str, float]:
    miss = blocking.miss_fraction
    n = workload.n_transactions
    committed = n * (1.0 - miss)
    # The simulator measures committed objects per unit elapsed time;
    # the run lasts roughly the arrival span stretched by the drain
    # tail (the horizon factor).
    throughput = (workload.arrival_rate * (1.0 - miss)
                  * workload.mean_size / workload.horizon_factor)
    summary = {
        "processed": float(n),
        "committed": committed,
        "missed": n * miss,
        "percent_missed": 100.0 * miss,
        "throughput": throughput,
        "mean_blocked_time": blocking.total_blocking,
        "mean_response_time": blocking.response_time,
        "model_utilization": blocking.utilization,
        "model_conflicts_per_txn": blocking.conflicts_per_txn,
        "model_deadlock_probability": blocking.deadlock_probability,
    }
    for name in BLOCKING_CATEGORIES:
        summary[f"model_{name}_blocking"] = blocking.categories[name]
    return summary
