"""Birth–death/Markov-chain lock-contention machinery.

The ceiling protocols serialize lock holding (DESIGN.md §10): at most
one transaction at a time holds locks, so the lock stage behaves as a
single-server queue.  Real-time transactions do not wait forever —
a waiter whose deadline fires abandons the queue — which makes the
natural model an M/M/1+M *reneging* queue (Erlang-A): a birth–death
chain with arrival rate λ, service rate μ, and per-waiter abandonment
rate θ = 1/patience, giving death rate μ + (n-1)·θ in state n.

The chain is solved exactly by the standard product-form recurrence;
:func:`reneging_queue` packages the stationary quantities the blocking
analysis consumes (abandonment fraction, mean wait over all arrivals).
:func:`erlang_tail` supplies the gamma/Erlang waiting-time tail used by
the 2PL deadline-miss estimator.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, List, Sequence

#: Truncation width: states are added until the unnormalised mass of
#: the last state falls below this fraction of the total.
_TAIL_EPSILON = 1e-12
#: Hard ceiling on chain length (overload chains stay short because
#: reneging grows the death rate linearly in n).
_MAX_STATES = 5000
#: Rescale threshold for the detailed-balance weights: in a heavily
#: overloaded chain with weak reneging the unnormalised mass grows
#: geometrically for hundreds of states and would overflow a float;
#: the stationary law is scale-invariant, so everything accumulated so
#: far is divided down whenever the frontier weight crosses this.
_RESCALE_LIMIT = 1e100


class BirthDeathChain:
    """A finite birth–death chain solved for its stationary law.

    ``births[n]`` is the rate n → n+1 and ``deaths[n]`` the rate
    n → n-1 (``deaths[0]`` is ignored).  The stationary distribution
    follows the detailed-balance recurrence
    π(n) ∝ Π birth(k)/death(k+1).
    """

    def __init__(self, births: Sequence[float],
                 deaths: Sequence[float]):
        if len(births) != len(deaths):
            raise ValueError(f"{len(births)} birth rates vs "
                             f"{len(deaths)} death rates")
        if not births:
            raise ValueError("chain needs at least one state")
        self.births = list(births)
        self.deaths = list(deaths)

    @classmethod
    def truncated(cls, birth: Callable[[int], float],
                  death: Callable[[int], float],
                  max_states: int = _MAX_STATES,
                  tail_epsilon: float = _TAIL_EPSILON
                  ) -> "BirthDeathChain":
        """Build a chain from rate functions, truncating adaptively:
        states are appended until the stationary mass of the frontier
        state is negligible (or ``max_states`` is hit)."""
        births = [birth(0)]
        deaths = [0.0]
        weight = 1.0
        total = 1.0
        for n in range(1, max_states):
            down = death(n)
            if down <= 0:
                break
            weight *= births[-1] / down
            total += weight
            births.append(birth(n))
            deaths.append(down)
            if weight < tail_epsilon * total:
                break
            if weight > _RESCALE_LIMIT:
                weight /= _RESCALE_LIMIT
                total /= _RESCALE_LIMIT
        return cls(births, deaths)

    def stationary(self) -> List[float]:
        """The stationary probabilities π(0..N)."""
        weights = [1.0]
        for n in range(1, len(self.births)):
            weights.append(weights[-1] * self.births[n - 1]
                           / self.deaths[n])
            if weights[-1] > _RESCALE_LIMIT:
                weights = [w / _RESCALE_LIMIT for w in weights]
        total = sum(weights)
        return [w / total for w in weights]

    def mean_population(self) -> float:
        return sum(n * p for n, p in enumerate(self.stationary()))


@dataclasses.dataclass(frozen=True)
class RenegingQueue:
    """Stationary quantities of the M/M/1+M (Erlang-A) queue."""

    arrival_rate: float
    service_rate: float
    reneging_rate: float
    #: E[number in system].
    mean_population: float
    #: E[number waiting] (excludes the one in service).
    mean_queue: float
    #: Fraction of arrivals that abandon before service
    #: (= θ·E[Lq]/λ, the reneging-rate balance).
    abandon_fraction: float
    #: Mean wait over *all* arrivals, served and abandoning
    #: (= E[Lq]/λ by Little's law).
    mean_wait: float


def reneging_queue(arrival_rate: float, service_rate: float,
                   reneging_rate: float,
                   max_states: int = _MAX_STATES) -> RenegingQueue:
    """Solve the single-server queue with exponential abandonment."""
    if arrival_rate <= 0 or service_rate <= 0:
        raise ValueError("arrival_rate and service_rate must be "
                         "positive")
    if reneging_rate < 0:
        raise ValueError("reneging_rate must be >= 0")
    if reneging_rate == 0 and arrival_rate >= service_rate:
        raise ValueError("a patience-free queue needs λ < μ")

    def death(n: int) -> float:
        return service_rate + (n - 1) * reneging_rate

    chain = BirthDeathChain.truncated(lambda n: arrival_rate, death,
                                      max_states=max_states)
    probs = chain.stationary()
    mean_pop = sum(n * p for n, p in enumerate(probs))
    mean_queue = sum((n - 1) * p for n, p in enumerate(probs) if n >= 1)
    abandon = reneging_rate * mean_queue / arrival_rate
    return RenegingQueue(
        arrival_rate=arrival_rate,
        service_rate=service_rate,
        reneging_rate=reneging_rate,
        mean_population=mean_pop,
        mean_queue=mean_queue,
        abandon_fraction=min(abandon, 1.0),
        mean_wait=mean_queue / arrival_rate,
    )


# ----------------------------------------------------------------------
# closed forms the tests cross-check the chain against
# ----------------------------------------------------------------------
def mm1_mean_wait(arrival_rate: float, service_rate: float) -> float:
    """M/M/1 mean waiting time in queue, Wq = ρ/(μ-λ)."""
    if arrival_rate >= service_rate:
        raise ValueError("M/M/1 needs λ < μ")
    rho = arrival_rate / service_rate
    return rho / (service_rate - arrival_rate)


def mm1_mean_queue(arrival_rate: float, service_rate: float) -> float:
    """M/M/1 mean queue length Lq = ρ²/(1-ρ)."""
    if arrival_rate >= service_rate:
        raise ValueError("M/M/1 needs λ < μ")
    rho = arrival_rate / service_rate
    return rho * rho / (1.0 - rho)


# ----------------------------------------------------------------------
# gamma/Erlang waiting-time tail
# ----------------------------------------------------------------------
def erlang_tail(shape: float, mean_stage: float,
                threshold: float) -> float:
    """P(sum of ``shape`` exponential stages of mean ``mean_stage``
    exceeds ``threshold``), interpolated for non-integer shape.

    With k waits per transaction each ≈ exponential, total delay is
    Erlang-k; the deadline-miss estimator asks for its tail beyond the
    remaining slack.  Non-integer k (a *mean* number of conflicts) is
    handled by log-linear interpolation between ⌊k⌋ and ⌈k⌉.
    """
    if shape <= 0 or mean_stage <= 0:
        return 0.0
    if threshold <= 0:
        return 1.0
    low = math.floor(shape)
    high = low + 1
    frac = shape - low
    tail_low = _erlang_tail_int(low, mean_stage, threshold)
    tail_high = _erlang_tail_int(high, mean_stage, threshold)
    if frac == 0:
        return tail_low
    # Log-linear interpolation keeps the tail monotone in the shape
    # and exact at integer shapes.
    floor_tail = 1e-300
    log_low = math.log(max(tail_low, floor_tail))
    log_high = math.log(max(tail_high, floor_tail))
    return math.exp((1.0 - frac) * log_low + frac * log_high)


def _erlang_tail_int(k: int, mean_stage: float,
                     threshold: float) -> float:
    """Exact Erlang-k tail: P(Gamma(k, mean) > t) for integer k."""
    if k <= 0:
        return 0.0
    x = threshold / mean_stage
    # Survival function = e^-x · Σ_{i<k} x^i/i!
    term = 1.0
    total = 1.0
    for i in range(1, k):
        term *= x / i
        total += term
    return min(1.0, math.exp(-x) * total)
