"""Closed-form blocking decomposition per protocol family.

Mirrors the trace layer's additive split (``response = direct +
ceiling + network + other``, :mod:`repro.trace.timeline`) on the
*predictive* side: each solver returns mean per-transaction blocking
by category plus the coupled miss fraction, because under deadlines
blocking and misses feed back on each other (missed transactions stop
issuing requests and stop consuming capacity).

Three regimes, three solvers:

- **Ceiling protocols (C/Cx)** — the rw-ceiling admission test
  serializes lock holding, so the lock stage is a single-server
  pipeline with service E[S]; waits come from the Erlang-A reneging
  chain (:mod:`repro.model.markov`) blended with a waste-balance
  overload estimate (:func:`waste_balance_miss`).
- **2PL family (L/P/PI)** — no serialization; blocking comes from
  pairwise conflicts.  A damped fixed point couples conflicts/txn
  ``m = κ·k_eff·N·L/D`` (Tay-style) with response time, the Erlang
  waiting-time tail past the deadline, and Gray's deadlock law
  ``P_dl = m²/2N``.
- **Distributed modes** — local mode is a per-site CPU-bound pipeline
  with replicated-update applier feedback; global mode stretches every
  lock hold by the GCM message round trip, moving the wait into the
  ceiling bucket and the transit into the network bucket.

The calibration constants below are documented in DESIGN.md §10
together with the experiments that fix them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..constants import (BLOCKING_CATEGORIES, BLOCKING_CEILING,
                         BLOCKING_DIRECT, BLOCKING_NETWORK)
from .markov import erlang_tail, reneging_queue
from .workload import CEILING_PROTOCOLS, TWOPL_PROTOCOLS, WorkloadModel

#: Waste factor w: the fraction of its full demand a deadline-missing
#: transaction consumes before aborting.  Enters the overload balance
#: ``ρ·(1-P+wP) = 1`` ⇒ ``P = (1-1/ρ)/(1-w)``.  Calibrated on the
#: Figure-2/3 grid (sizes 11..20): w = 0.35.
WASTE_FACTOR = 0.35
#: Global mode wastes less per miss — most rejected transactions die
#: waiting in the GCM queue before consuming any service at all.
GLOBAL_WASTE_FACTOR = 0.10
#: Near-critical load correction: finite runs (200 transactions)
#: reach only ~10% of the reneging chain's steady-state abandonment,
#: because the chain needs many sojourns to populate its tail.
TRANSIENT_FACTOR = 0.10
#: Some transactions always slip through even under extreme overload
#: (they arrive into a momentarily empty system).
MISS_CAP = 0.995

#: Damping and iteration budget of the 2PL fixed point.
_DAMPING = 0.3
_ITERATIONS = 300


@dataclasses.dataclass(frozen=True)
class BlockingPrediction:
    """Mean per-transaction blocking by category, plus the coupled
    contention quantities the response layer reports."""

    #: category name -> mean blocked time per transaction.
    categories: Dict[str, float]
    #: Predicted deadline-miss fraction in [0, 1].
    miss_fraction: float
    #: Estimated mean response time of *committed* transactions.
    response_time: float
    #: Bottleneck utilization after the horizon correction.
    utilization: float
    #: Mean lock conflicts per transaction (2PL family; 0 otherwise).
    conflicts_per_txn: float
    #: Per-transaction deadlock probability (2PL family; 0 otherwise).
    deadlock_probability: float

    @property
    def total_blocking(self) -> float:
        """Mean lock blocking per transaction (network excluded, like
        the simulator's ``mean_blocked_time``)."""
        return sum(value for name, value in self.categories.items()
                   if name != BLOCKING_NETWORK)

    @property
    def network_wait(self) -> float:
        return self.categories.get(BLOCKING_NETWORK, 0.0)


def _categories(direct: float = 0.0, ceiling: float = 0.0,
                network: float = 0.0) -> Dict[str, float]:
    values = {BLOCKING_DIRECT: direct, BLOCKING_CEILING: ceiling,
              BLOCKING_NETWORK: network}
    return {name: values.get(name, 0.0)
            for name in BLOCKING_CATEGORIES}


# ----------------------------------------------------------------------
# shared estimators
# ----------------------------------------------------------------------
def waste_balance_miss(utilization: float,
                       waste_factor: float = WASTE_FACTOR) -> float:
    """Overload miss fraction from the capacity balance.

    At ρ > 1 the system sheds exactly the excess: committed work
    ρ·(1-P) plus wasted work ρ·w·P must fit in unit capacity, so
    P = (1 - 1/ρ)/(1 - w), clamped to [0, MISS_CAP].
    """
    if utilization <= 1.0:
        return 0.0
    p = (1.0 - 1.0 / utilization) / (1.0 - waste_factor)
    return min(max(p, 0.0), MISS_CAP)


def _pipeline_wait(workload: WorkloadModel, arrival_rate: float,
                   service_time: float, overload_miss: float
                   ) -> "tuple[float, float]":
    """(miss fraction, mean wait) of a single-server lock pipeline.

    Blends the Erlang-A reneging chain (exact for the exponential
    abstraction, good near and below saturation) with the
    waste-balance overload estimate (good past saturation): the miss
    fraction takes whichever regime dominates, and the mean wait
    saturates at the patience — a waiter cannot wait past its
    deadline allowance.
    """
    patience = workload.patience
    queue = reneging_queue(arrival_rate, 1.0 / service_time,
                           1.0 / patience)
    miss = min(MISS_CAP,
               max(overload_miss,
                   TRANSIENT_FACTOR * queue.abandon_fraction))
    wait = patience * min(1.0, queue.mean_wait / patience
                          + overload_miss)
    return miss, wait


# ----------------------------------------------------------------------
# ceiling protocols, single site
# ----------------------------------------------------------------------
def ceiling_blocking(workload: WorkloadModel) -> BlockingPrediction:
    """PCP blocking: the rw-ceiling admission test serializes lock
    holding, so the lock stage is a pipeline of rate 1/E[S].

    All predicted blocking lands in the ceiling bucket: measured C
    runs classify >95% of blocks as conflict-free admission denials
    (``cc_ceiling_blocks``), the protocol's push-through cost.
    """
    if workload.n_transactions == 1:
        return _uncontended(workload)
    service = workload.mean_service
    rho = (workload.arrival_rate * service) / workload.horizon_factor
    overload = waste_balance_miss(rho)
    miss, wait = _pipeline_wait(workload, workload.arrival_rate,
                                service, overload)
    response = min(service + wait, workload.mean_allowance)
    return BlockingPrediction(
        categories=_categories(ceiling=wait),
        miss_fraction=miss,
        response_time=response,
        utilization=rho,
        conflicts_per_txn=0.0,
        deadlock_probability=0.0,
    )


# ----------------------------------------------------------------------
# 2PL family, single site
# ----------------------------------------------------------------------
def twopl_blocking(workload: WorkloadModel) -> BlockingPrediction:
    """2PL contention fixed point with deadline truncation.

    Couples four quantities until stationary: conflicts per
    transaction ``m = κ·k_eff·N·L/D`` (requests × population ×
    mean locks held × conflict factor over the database), response
    time ``R = base + m·W_c``, the deadline-miss probability (Erlang
    tail of the total wait past the slack, plus Gray's deadlock law),
    and the truncation feedback — a missing transaction stops issuing
    requests (``k_eff = k̄·(1-P/2)``) and leaves at its deadline
    (population counts min(R, d̄)).
    """
    if workload.n_transactions == 1:
        return _uncontended(workload)
    lam = workload.arrival_rate
    mean_size = workload.mean_size
    service = workload.mean_service
    allowance = workload.mean_allowance
    db = float(workload.db_size)
    kappa = workload.conflict_factor

    # CPU queueing before/between lock waits (I/O is parallel): an
    # M/M/1-flavoured per-object wait summed over the access path.
    rho_cpu = lam * mean_size * workload.cpu_per_object
    rho_cpu_eff = min(rho_cpu / workload.horizon_factor, 0.95)
    cpu_wait = (mean_size * (workload.cpu_per_object / 2.0)
                * rho_cpu_eff / (1.0 - rho_cpu_eff))
    base = service + cpu_wait

    response = base
    miss = 0.0
    conflicts = 0.0
    deadlock = 0.0
    for __ in range(_ITERATIONS):
        k_eff = mean_size * (1.0 - miss / 2.0)
        in_system = ((1.0 - miss) * min(response, allowance)
                     + miss * allowance)
        population = lam * in_system
        locks_held = k_eff / 2.0
        conflicts = kappa * k_eff * population * locks_held / db
        per_wait = min(response, allowance) / 2.0
        deadlock = min(1.0, conflicts * conflicts
                       / (2.0 * max(population, 1e-3)))
        if conflicts > 1e-6:
            tail = erlang_tail(conflicts, max(per_wait, 1e-9),
                               max(allowance - base, 1e-9))
        else:
            tail = 0.0
        miss_next = 1.0 - (1.0 - tail) * (1.0 - deadlock)
        response_next = min(base + conflicts * per_wait,
                            1.2 * allowance)
        response += _DAMPING * (response_next - response)
        miss += _DAMPING * (miss_next - miss)

    # Deadline censoring: a transaction's accumulated lock wait cannot
    # exceed its patience, so the raw m·W_c estimate saturates
    # harmonically instead of growing unboundedly in the thrash regime.
    raw_wait = conflicts * min(response, allowance) / 2.0
    wait = raw_wait / (1.0 + raw_wait / workload.patience)
    miss = min(miss, MISS_CAP)
    return BlockingPrediction(
        categories=_categories(direct=wait),
        miss_fraction=miss,
        response_time=min(base + wait, allowance),
        utilization=rho_cpu_eff,
        conflicts_per_txn=conflicts,
        deadlock_probability=deadlock,
    )


# ----------------------------------------------------------------------
# distributed modes (always ceiling-based, as in the paper)
# ----------------------------------------------------------------------
def local_mode_blocking(workload: WorkloadModel) -> BlockingPrediction:
    """Local mode: per-site ceiling pipelines plus applier feedback.

    Each site runs its own ceiling manager over one CPU; committed
    updates replicate asynchronously, so every commit adds
    ``(n_sites-1)·size·apply_cpu`` of applier work to the other
    sites.  The feedback is stabilising — misses reduce commits reduce
    applier load — and converges in a few damped iterations.
    """
    if workload.n_transactions == 1:
        return _uncontended(workload)
    lam_site = workload.arrival_rate / workload.n_sites
    service = workload.mean_service
    apply_demand = (workload.update_rate
                    * (workload.n_sites - 1)
                    * workload.mean_size * workload.apply_cpu
                    / workload.n_sites)
    miss = 0.0
    rho = 0.0
    for __ in range(_ITERATIONS):
        rho = ((lam_site * service + apply_demand * (1.0 - miss))
               / workload.horizon_factor)
        miss_next = waste_balance_miss(rho)
        miss += _DAMPING * (miss_next - miss)
    # The applier share slows the transaction pipeline: waits follow
    # the reneging chain at the reduced effective service rate.
    apply_share = min(apply_demand * (1.0 - miss)
                      / workload.horizon_factor, 0.9)
    slowed_service = service / (1.0 - apply_share)
    miss, wait = _pipeline_wait(workload, lam_site, slowed_service,
                                waste_balance_miss(rho))
    response = min(service + wait, workload.mean_allowance)
    return BlockingPrediction(
        categories=_categories(ceiling=wait),
        miss_fraction=miss,
        response_time=response,
        utilization=rho,
        conflicts_per_txn=0.0,
        deadlock_probability=0.0,
    )


def global_mode_blocking(workload: WorkloadModel) -> BlockingPrediction:
    """Global mode: one GCM pipeline, lock holds stretched by messages.

    Every lock request round-trips to the global ceiling manager, so a
    transaction holds the pipeline for ``E[S] + 2·delay·k̄`` — the
    message time is *inside* the serialized region, which is why
    global mode collapses so much earlier than local mode.
    """
    network = (2.0 * workload.comm_delay * workload.mean_size
               + 3.0 * workload.comm_delay)  # lock RTTs + 2PC
    if workload.n_transactions == 1:
        return _uncontended(workload, network=network)
    stretched = (workload.mean_service
                 + 2.0 * workload.comm_delay * workload.mean_size)
    rho = (workload.arrival_rate * stretched) / workload.horizon_factor
    overload = waste_balance_miss(rho, GLOBAL_WASTE_FACTOR)
    miss, wait = _pipeline_wait(workload, workload.arrival_rate,
                                stretched, overload)
    response = min(workload.mean_service + wait + network,
                   workload.mean_allowance)
    return BlockingPrediction(
        categories=_categories(ceiling=wait, network=network),
        miss_fraction=miss,
        response_time=response,
        utilization=rho,
        conflicts_per_txn=0.0,
        deadlock_probability=0.0,
    )


# ----------------------------------------------------------------------
# dispatch and degenerate cases
# ----------------------------------------------------------------------
def _uncontended(workload: WorkloadModel,
                 network: float = 0.0) -> BlockingPrediction:
    """A single transaction never blocks: the model is *exact* —
    response equals the service demand (plus message transit), and the
    only possible miss is an infeasible deadline."""
    response = workload.mean_service + network
    miss = 1.0 if response > workload.mean_allowance else 0.0
    return BlockingPrediction(
        categories=_categories(network=network),
        miss_fraction=miss,
        response_time=response,
        utilization=0.0,
        conflicts_per_txn=0.0,
        deadlock_probability=0.0,
    )


def predict_blocking(workload: WorkloadModel) -> BlockingPrediction:
    """Route a workload to its protocol family's solver."""
    if workload.mode == "local":
        return local_mode_blocking(workload)
    if workload.mode == "global":
        return global_mode_blocking(workload)
    if workload.protocol in CEILING_PROTOCOLS:
        return ceiling_blocking(workload)
    if workload.protocol in TWOPL_PROTOCOLS:
        return twopl_blocking(workload)
    raise ValueError(f"no analytic model for protocol "
                     f"{workload.protocol!r}; expected one of "
                     f"{CEILING_PROTOCOLS + TWOPL_PROTOCOLS}")
