"""repro.model — analytic blocking/response-time model.

The codebase's first predictive layer: closed-form blocking
decomposition, a birth–death lock-contention chain and an
M/G/1-with-reneging response-time/deadline-miss estimator, all driven
by the *same* config dataclasses the simulator consumes.  The model is
a cheap proxy — microseconds per configuration instead of seconds —
used two ways:

- ``repro validate-model`` sweeps simulator vs. model across a
  calibration grid and reports per-metric relative error against a
  documented budget (:mod:`repro.model.validate`);
- ``repro sweep --prune-model`` scores candidate configurations
  analytically and only simulates the most promising fraction
  (:mod:`repro.model.prune`).

See DESIGN.md §10 for the assumptions and their validity regimes.
"""

from .blocking import (BlockingPrediction, ceiling_blocking,
                       twopl_blocking)
from .markov import (BirthDeathChain, RenegingQueue, erlang_tail,
                     mm1_mean_wait, reneging_queue)
from .prune import PruneResult, model_scores, run_pruned_sweep
from .response import ModelPrediction, predict, predict_summary
from .validate import (DEFAULT_ERROR_BUDGET, METRIC_FLOORS,
                       ValidationReport, format_report, full_grid,
                       quick_grid, run_validation)
from .workload import WorkloadModel

__all__ = [
    "BirthDeathChain",
    "BlockingPrediction",
    "DEFAULT_ERROR_BUDGET",
    "METRIC_FLOORS",
    "ModelPrediction",
    "PruneResult",
    "RenegingQueue",
    "ValidationReport",
    "WorkloadModel",
    "ceiling_blocking",
    "erlang_tail",
    "format_report",
    "full_grid",
    "mm1_mean_wait",
    "model_scores",
    "predict",
    "predict_summary",
    "quick_grid",
    "reneging_queue",
    "run_pruned_sweep",
    "twopl_blocking",
]
