"""Sim-vs-model cross-validation: the divergence report.

``repro validate-model`` sweeps a calibration grid twice — once
through the simulator (via the :mod:`repro.exec` engine: fingerprint
cache, optional process pool) and once through the analytic model —
and reports the per-metric relative error, the worst-diverging
configurations, and a pass/fail verdict against a configurable error
budget.  The quick grid is the CI smoke; the full grid adds the 2PL
thrash regime and the distributed modes, where the model is documented
to be coarser (DESIGN.md §10).

Relative error uses an absolute floor per metric,
``err = |model - sim| / max(|sim|, floor)``, so near-zero baselines
(0.1% missed, 0.4 time units blocked) do not turn rounding noise into
a huge relative error.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

from ..core.experiment import replicate_many
from ..exec import (ResultCache, TextProgress, default_cache_dir,
                    resolve_jobs)
from .response import predict_summary
from .workload import AnyConfig

#: Metrics reported per configuration (the error budget gates on the
#: keys of DEFAULT_ERROR_BUDGET, a subset of these).
REPORTED_METRICS = ("percent_missed", "mean_blocked_time",
                    "mean_response_time", "throughput")
#: Absolute denominators floors per metric (percent points, virtual
#: time units, objects/time): differences below the floor are noise.
METRIC_FLOORS = {
    "percent_missed": 5.0,
    "mean_blocked_time": 10.0,
    "mean_response_time": 10.0,
    "throughput": 0.05,
}
#: The documented budget: mean relative error the model must stay
#: within on the quick grid (see DESIGN.md §10 for the calibration).
DEFAULT_ERROR_BUDGET = {
    "percent_missed": 0.30,
    "mean_blocked_time": 0.40,
}


@dataclasses.dataclass(frozen=True)
class ValidationCase:
    """One grid point: a label and the runnable config."""

    label: str
    config: AnyConfig


def quick_grid() -> List[ValidationCase]:
    """The CI calibration grid: 13 single-site points.

    The full Figure-2/3 size sweep for the ceiling protocol, plus the
    2PL family (P and L) below its thrash knee — the regime the 2PL
    fixed point is calibrated for.
    """
    from ..bench.figures import single_site_config
    cases = [ValidationCase(f"C/size={size}",
                            single_site_config("C", size))
             for size in (2, 5, 8, 11, 14, 17, 20)]
    for protocol in ("P", "L"):
        cases.extend(
            ValidationCase(f"{protocol}/size={size}",
                           single_site_config(protocol, size))
            for size in (2, 5, 8))
    return cases


def full_grid() -> List[ValidationCase]:
    """Quick grid + 2PL thrash regime + the distributed modes."""
    from ..bench.figures import distributed_config, single_site_config
    cases = quick_grid()
    for protocol in ("P", "L"):
        cases.extend(
            ValidationCase(f"{protocol}/size={size}",
                           single_site_config(protocol, size))
            for size in (11, 14, 17, 20))
    for mode, delay, mix in (("local", 1.0, 0.0), ("local", 1.0, 0.5),
                             ("global", 1.0, 0.5),
                             ("global", 4.0, 0.5)):
        cases.append(ValidationCase(
            f"{mode}/delay={delay:g}/mix={mix:g}",
            distributed_config(mode, delay, mix)))
    return cases


def relative_error(metric: str, sim: float, model: float) -> float:
    floor = METRIC_FLOORS.get(metric, 1e-9)
    return abs(model - sim) / max(abs(sim), floor)


@dataclasses.dataclass(frozen=True)
class ValidationReport:
    """Everything ``repro validate-model`` prints or writes."""

    #: Per-case {"label", "metrics": {name: {sim, model, error}}}.
    rows: List[dict]
    #: metric -> mean relative error across the grid.
    mean_errors: Dict[str, float]
    #: metric -> budget (gated metrics only).
    budget: Dict[str, float]
    replications: int

    @property
    def within_budget(self) -> bool:
        return all(self.mean_errors[metric] <= limit
                   for metric, limit in self.budget.items())

    def worst(self, metric: str, top: int = 3) -> List[dict]:
        """The ``top`` most-diverging cases for one metric."""
        ranked = sorted(
            self.rows,
            key=lambda row: -row["metrics"][metric]["error"])
        return ranked[:top]

    def as_dict(self) -> dict:
        return {
            "schema": "repro-model-validation/1",
            "replications": self.replications,
            "budget": dict(self.budget),
            "mean_errors": dict(self.mean_errors),
            "within_budget": self.within_budget,
            "cases": self.rows,
        }


def run_validation(cases: Sequence[ValidationCase],
                   replications: int = 3,
                   budget: Optional[Dict[str, float]] = None, *,
                   jobs: Optional[int] = None, cache=None,
                   progress=None) -> ValidationReport:
    """Run the grid through simulator and model; build the report."""
    cases = list(cases)
    if not cases:
        raise ValueError("validation needs at least one case")
    sims = replicate_many([case.config for case in cases],
                          replications=replications, jobs=jobs,
                          cache=cache, progress=progress)
    rows = []
    for case, sim in zip(cases, sims):
        model = predict_summary(case.config)
        metrics = {}
        for metric in REPORTED_METRICS:
            sim_value = float(sim[metric])
            model_value = float(model[metric])
            metrics[metric] = {
                "sim": sim_value,
                "model": model_value,
                "error": relative_error(metric, sim_value, model_value),
            }
        rows.append({"label": case.label, "metrics": metrics})
    mean_errors = {
        metric: sum(row["metrics"][metric]["error"]
                    for row in rows) / len(rows)
        for metric in REPORTED_METRICS}
    return ValidationReport(
        rows=rows, mean_errors=mean_errors,
        budget=dict(DEFAULT_ERROR_BUDGET if budget is None else budget),
        replications=replications)


def format_report(report: ValidationReport) -> str:
    """The human-readable divergence table."""
    lines = [f"model vs simulation — {len(report.rows)} configs, "
             f"{report.replications} replications each",
             f"{'config':<22} {'metric':<18} {'sim':>10} "
             f"{'model':>10} {'rel err':>8}"]
    for row in report.rows:
        for metric in REPORTED_METRICS:
            cell = row["metrics"][metric]
            lines.append(
                f"{row['label']:<22} {metric:<18} "
                f"{cell['sim']:>10.3f} {cell['model']:>10.3f} "
                f"{cell['error']:>8.3f}")
    lines.append("")
    lines.append(f"{'mean relative error':<40} {'budget':>8}")
    for metric in REPORTED_METRICS:
        limit = report.budget.get(metric)
        verdict = ""
        if limit is not None:
            verdict = (" over budget!"
                       if report.mean_errors[metric] > limit else " ok")
        lines.append(
            f"  {metric:<24} {report.mean_errors[metric]:>10.3f} "
            f"{'' if limit is None else format(limit, '.2f'):>8}"
            f"{verdict}")
    for metric in report.budget:
        worst = report.worst(metric, top=2)
        if worst:
            labels = ", ".join(
                f"{row['label']} ({row['metrics'][metric]['error']:.2f})"
                for row in worst)
            lines.append(f"  worst {metric}: {labels}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI: repro validate-model
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro validate-model",
        description="Sweep simulator vs analytic model across the "
                    "calibration grid and report the divergence "
                    "against the documented error budget.")
    parser.add_argument("--quick", action="store_true",
                        help="the 13-config single-site grid with 2 "
                             "replications (CI smoke); default is the "
                             "full grid incl. 2PL thrash and "
                             "distributed modes")
    parser.add_argument("--replications", type=int, default=None,
                        help="seeded runs per config (default: 2 "
                             "quick, 3 full)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the report as a JSON artifact")
    parser.add_argument("--budget-missed", type=float,
                        default=DEFAULT_ERROR_BUDGET["percent_missed"],
                        help="mean relative-error budget on "
                             "percent_missed (default %(default)s)")
    parser.add_argument(
        "--budget-blocking", type=float,
        default=DEFAULT_ERROR_BUDGET["mean_blocked_time"],
        help="mean relative-error budget on mean_blocked_time "
             "(default %(default)s)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS "
                             "or 1)")
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--progress", action="store_true")
    args = parser.parse_args(argv)
    if args.replications is not None and args.replications < 1:
        print("error: --replications must be >= 1", file=sys.stderr)
        return 2
    if args.budget_missed <= 0 or args.budget_blocking <= 0:
        print("error: budgets must be positive", file=sys.stderr)
        return 2
    replications = args.replications
    if replications is None:
        replications = 2 if args.quick else 3
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    progress = None
    if args.progress or sys.stderr.isatty():
        progress = TextProgress(sys.stderr)
    cases = quick_grid() if args.quick else full_grid()
    budget = {"percent_missed": args.budget_missed,
              "mean_blocked_time": args.budget_blocking}
    report = run_validation(cases, replications=replications,
                            budget=budget,
                            jobs=resolve_jobs(args.jobs), cache=cache,
                            progress=progress)
    print(format_report(report))
    if args.json:
        directory = os.path.dirname(args.json)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.json}", file=sys.stderr)
    if not report.within_budget:
        over = [metric for metric, limit in report.budget.items()
                if report.mean_errors[metric] > limit]
        print(f"\nBUDGET EXCEEDED: {', '.join(over)}", file=sys.stderr)
        return 1
    return 0
