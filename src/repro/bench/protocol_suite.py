"""Post-paper protocol suite: the queue locks and DPCP vs the paper's
ceiling protocols.

Not a figure from the paper — a repo-grown companion that reruns the
Figure-2/3 single-site grid with the registry's post-paper plugins
(mpcp, dpcp, fmlp) next to the paper's ceiling baselines (C and its
exclusive-lock ablation Cx), so the follow-on literature's protocols
are measured under exactly the workload the paper used to rank its
own.  The cast is registry-derived: registering another plugin adds a
column with no edits here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.experiment import replicate_many
from ..core.reporting import format_table
from ..protocols import REGISTRY
from .figures import single_site_config

#: Light-load, knee, heavy and thrash points of the Figure-2/3 sweep.
PROTOCOL_SUITE_SIZES = (2, 8, 14, 20)


def suite_protocols() -> Tuple[str, ...]:
    """The suite's cast: the paper's ceiling-family baselines followed
    by every registered post-paper protocol, in registration order."""
    specs = REGISTRY.specs()
    baseline = [spec.name for spec in specs
                if spec.paper_protocol and spec.family == "ceiling"]
    modern = [spec.name for spec in specs if not spec.paper_protocol]
    return tuple(baseline + modern)


def run_protocol_suite(sizes: Sequence[int] = PROTOCOL_SUITE_SIZES,
                       replications: int = 5,
                       n_transactions: int = 200, *,
                       jobs: Optional[int] = None, cache=None,
                       progress=None) -> List[Dict]:
    """One row per size: throughput/%missed/deadlocks per protocol."""
    protocols = suite_protocols()
    points = [(size, protocol) for size in sizes
              for protocol in protocols]
    summaries = replicate_many(
        [single_site_config(protocol, size, n_transactions)
         for size, protocol in points],
        replications=replications, jobs=jobs, cache=cache,
        progress=progress)
    by_point = dict(zip(points, summaries))
    series = []
    for size in sizes:
        row: Dict = {"size": size}
        for protocol in protocols:
            aggregated = by_point[(size, protocol)]
            row[f"throughput_{protocol}"] = aggregated["throughput"]
            row[f"missed_{protocol}"] = aggregated["percent_missed"]
            row[f"deadlocks_{protocol}"] = aggregated["cc_deadlocks"]
        series.append(row)
    return series


def format_protocol_suite(series: List[Dict]) -> str:
    protocols = suite_protocols()
    missed = format_table(
        ["size"] + [f"{p} (%missed)" for p in protocols],
        [[row["size"]] + [row[f"missed_{p}"] for p in protocols]
         for row in series],
        title="Protocol suite - % deadline-missing "
              "(paper ceilings vs mpcp/dpcp/fmlp)")
    throughput = format_table(
        ["size"] + [f"{p} (objects/sec)" for p in protocols],
        [[row["size"]] + [row[f"throughput_{p}"] for p in protocols]
         for row in series],
        title="Protocol suite - throughput "
              "(normalised, committed objects/sec)")
    deadlocks = format_table(
        ["size"] + [f"{p} (deadlocks)" for p in protocols],
        [[row["size"]] + [row[f"deadlocks_{p}"] for p in protocols]
         for row in series],
        title="Protocol suite - deadlock cycles detected "
              "(ceiling-family protocols are deadlock-free)")
    return "\n\n".join((missed, throughput, deadlocks))
