"""Microbenchmarks for the simulation hot path (``repro bench``).

Every paper figure is thousands of discrete-event runs, so the per-event
cost of the kernel/lock/trace path *is* the repo's performance story.
This module prices that path directly:

- ``calibration``     — a fixed pure-Python spin, used to normalize
  ops/sec across machines (CI gates on the *normalized* throughput, so
  a slower runner does not read as a regression);
- ``event_dispatch``  — raw kernel event throughput: N bare callbacks
  through ``Kernel.run``;
- ``timer_churn``     — schedule + cancel far-future timers while
  draining near events (the deadline-timer pattern; exercises the
  event-queue's dead-entry compaction);
- ``spawn_resume``    — process creation and generator resume churn;
- ``single_site_pcp`` / ``single_site_2pl`` — one seeded single-site
  run under protocols C and L (transactions/sec);
- ``dist_local`` / ``dist_global`` — one seeded distributed run per
  architecture (transactions/sec, messages included);
- ``traced_single_site`` — the PCP run again under an installed
  :class:`~repro.trace.tracer.Tracer`, pricing observability overhead;
- ``turbo_*`` — the same workloads on the turbo engine
  (:mod:`repro.kernel.turbo`).  Each pairs with a reference benchmark
  (:data:`ENGINE_PAIRS`) and reports ``engine_speedup_x``; the
  ``batched_dispatch`` pair is the batch-stepped showcase (thousands
  of same-timestamp events per wave, dispatched one ``batch_call``
  per wave on turbo vs one Python call per event on reference) and is
  what the CI ``--min-engine-speedup`` gate prices.

``run_bench`` writes ``BENCH_<timestamp>.json`` documents; ``compare``
diffs two documents and enforces a regression threshold (the CI gate).
Wall time is measured with ``time.perf_counter`` — host time never
leaks into simulation state (the runs themselves are seeded and
virtual-time deterministic, which is property-tested elsewhere).
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..exec.host import peak_rss_kb

#: Benchmarks the CI regression gate checks by default: the acceptance
#: metrics of the optimization pass (raw dispatch and the single-site
#: microbench), chosen because they are the least noisy.
DEFAULT_GATED = ("event_dispatch", "single_site_pcp")

#: (full, quick) problem sizes per benchmark.
_SIZES = {
    "calibration": (400_000, 120_000),
    "event_dispatch": (200_000, 30_000),
    "timer_churn": (60_000, 10_000),
    "spawn_resume": (2_000, 400),
    "single_site": (400, 120),
    "distributed": (150, 60),
}


def _reset_counters() -> None:
    """Process-global id counters restart so every measured run does
    identical work regardless of what ran before it."""
    import repro.kernel.process as process_module
    import repro.txn.transaction as transaction_module
    transaction_module._tid_counter = itertools.count(1)
    process_module._pid_counter = itertools.count(1)


# ----------------------------------------------------------------------
# the benchmark bodies: each returns the operation count it performed
# ----------------------------------------------------------------------
def _bench_calibration(n: int) -> int:
    total = 0
    for i in range(n):
        total += i & 7
    return n


def _bench_event_dispatch(n: int) -> int:
    from ..kernel.kernel import Kernel
    kernel = Kernel(seed=0)
    schedule = kernel.events.schedule

    def callback() -> None:
        pass

    for i in range(n):
        schedule(float(i), callback)
    kernel.run()
    return n


def _bench_timer_churn(n: int) -> int:
    from ..kernel.kernel import Kernel
    kernel = Kernel(seed=0)
    events = kernel.events

    def callback() -> None:
        pass

    horizon = float(n) * 1e6
    for i in range(n):
        timer = events.schedule(horizon + i, callback)
        events.schedule(float(i), callback)
        events.cancel(timer)
    kernel.run(until=float(n))
    return 2 * n


def _bench_spawn_resume(n: int) -> int:
    from ..kernel.kernel import Kernel
    from ..kernel.syscalls import Delay
    yields = 10

    def body():
        for __ in range(yields):
            yield Delay(1.0)

    kernel = Kernel(seed=0)
    for i in range(n):
        kernel.spawn(body(), name=f"p{i}")
    kernel.run()
    return n * (yields + 1)


def _single_site_config(protocol: str, n_transactions: int):
    from ..core.config import SingleSiteConfig, WorkloadConfig
    return SingleSiteConfig(
        protocol=protocol, db_size=200, seed=17,
        workload=WorkloadConfig(n_transactions=n_transactions,
                                mean_interarrival=2.0,
                                transaction_size=8, size_jitter=2,
                                read_only_fraction=0.25))


def _run_single_site(protocol: str, n: int) -> int:
    from ..core.experiment import run_single_site
    _reset_counters()
    row = run_single_site(_single_site_config(protocol, n))
    return int(row["processed"])


def _bench_single_site_pcp(n: int) -> int:
    return _run_single_site("C", n)


def _bench_single_site_2pl(n: int) -> int:
    return _run_single_site("L", n)


def _distributed_config(mode: str, n_transactions: int):
    from ..core.config import (DistributedConfig, TimingConfig,
                               WorkloadConfig)
    from ..txn.manager import CostModel
    return DistributedConfig(
        mode=mode, comm_delay=1.0, db_size=120, seed=17,
        workload=WorkloadConfig(n_transactions=n_transactions,
                                mean_interarrival=3.0,
                                transaction_size=4, size_jitter=1,
                                read_only_fraction=0.5),
        timing=TimingConfig(slack_factor=10.0),
        costs=CostModel(cpu_per_object=1.0, io_per_object=0.0))


def _run_distributed(mode: str, n: int) -> int:
    from ..core.experiment import run_distributed
    _reset_counters()
    row = run_distributed(_distributed_config(mode, n))
    return int(row["processed"])


def _bench_dist_local(n: int) -> int:
    return _run_distributed("local", n)


def _bench_dist_global(n: int) -> int:
    return _run_distributed("global", n)


def _bench_traced_single_site(n: int) -> int:
    from ..core.experiment import run_single_site
    from ..trace.tracer import Tracer, tracing
    _reset_counters()
    with tracing(Tracer()):
        row = run_single_site(_single_site_config("C", n))
    return int(row["processed"])


def _bench_turbo_event_dispatch(n: int) -> int:
    from ..kernel.turbo import TurboKernel
    kernel = TurboKernel(seed=0)
    schedule = kernel.events.schedule

    def callback() -> None:
        pass

    for i in range(n):
        schedule(float(i), callback)
    kernel.run()
    return n


class _WaveTick:
    """The batch-dispatch workload: one counter ticked per event.

    ``__call__`` is what the reference loop pays per event;
    ``batch_call`` is the turbo engine's opt-in — one call advances
    the whole same-timestamp wave.  Both leave identical state, which
    is exactly the batch-step eligibility contract (DESIGN.md §14).
    """

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def __call__(self) -> None:
        self.count += 1

    def batch_call(self, n: int) -> None:
        self.count += n


#: Events per same-timestamp wave in the batched-dispatch workload.
_WAVE = 512


def _run_batched_dispatch(kernel, n: int) -> int:
    tick = _WaveTick()
    schedule_batch = kernel.events.schedule_batch
    for wave in range(n // _WAVE):
        schedule_batch(float(wave), tick, _WAVE)
    kernel.run()
    assert tick.count == (n // _WAVE) * _WAVE
    return n


def _bench_batched_dispatch(n: int) -> int:
    from ..kernel.kernel import Kernel
    return _run_batched_dispatch(Kernel(seed=0), n)


def _bench_turbo_batched_dispatch(n: int) -> int:
    from ..kernel.turbo import TurboKernel
    return _run_batched_dispatch(TurboKernel(seed=0), n)


def _bench_turbo_single_site(n: int) -> int:
    import dataclasses

    from ..core.experiment import run_single_site
    _reset_counters()
    row = run_single_site(dataclasses.replace(
        _single_site_config("C", n), engine="turbo"))
    return int(row["processed"])


def _bench_metered_event_dispatch(n: int) -> int:
    from ..telemetry.registry import metering
    with metering():
        return _bench_event_dispatch(n)


def _bench_metered_single_site(n: int) -> int:
    from ..core.experiment import run_single_site
    from ..telemetry.registry import metering
    _reset_counters()
    with metering():
        row = run_single_site(_single_site_config("C", n))
    return int(row["processed"])


#: Metered benchmark -> plain baseline; priced as overhead ratios and
#: gated by ``--max-metrics-overhead`` (the ISSUE's <=10% budget).
METERED_PAIRS = {"metered_event_dispatch": "event_dispatch",
                 "metered_single_site": "single_site_pcp"}

#: Turbo benchmark -> reference twin running the identical workload;
#: priced as ``engine_speedup_x`` ratios and gated by
#: ``--min-engine-speedup`` (CI holds ``turbo_batched_dispatch`` to
#: the tentpole's >=10x floor).
ENGINE_PAIRS = {"turbo_event_dispatch": "event_dispatch",
                "turbo_batched_dispatch": "batched_dispatch",
                "turbo_single_site": "single_site_pcp"}

#: name -> (size key, body).  Declaration order is report order.
BENCHMARKS: Dict[str, Tuple[str, Callable[[int], int]]] = {
    "calibration": ("calibration", _bench_calibration),
    "event_dispatch": ("event_dispatch", _bench_event_dispatch),
    "timer_churn": ("timer_churn", _bench_timer_churn),
    "spawn_resume": ("spawn_resume", _bench_spawn_resume),
    "single_site_pcp": ("single_site", _bench_single_site_pcp),
    "single_site_2pl": ("single_site", _bench_single_site_2pl),
    "dist_local": ("distributed", _bench_dist_local),
    "dist_global": ("distributed", _bench_dist_global),
    "traced_single_site": ("single_site", _bench_traced_single_site),
    "metered_event_dispatch": ("event_dispatch",
                               _bench_metered_event_dispatch),
    "metered_single_site": ("single_site", _bench_metered_single_site),
    "batched_dispatch": ("event_dispatch", _bench_batched_dispatch),
    "turbo_event_dispatch": ("event_dispatch",
                             _bench_turbo_event_dispatch),
    "turbo_batched_dispatch": ("event_dispatch",
                               _bench_turbo_batched_dispatch),
    "turbo_single_site": ("single_site", _bench_turbo_single_site),
}


def _measure(body: Callable[[int], int], size: int,
             repeats: int) -> Tuple[int, float, List[float]]:
    """Run ``body`` ``repeats`` times; return (ops, best wall, walls).

    Best-of-N is the standard microbenchmark estimator: the minimum is
    the least contaminated by scheduler noise, and every repeat does
    identical (seeded) work.
    """
    walls: List[float] = []
    ops = 0
    for __ in range(repeats):
        started = time.perf_counter()
        ops = body(size)
        walls.append(time.perf_counter() - started)
    return ops, min(walls), walls


def run_bench(quick: bool = False, only: Optional[Sequence[str]] = None,
              repeats: int = 3) -> dict:
    """Run the suite and return the benchmark document (pure data)."""
    selected = list(BENCHMARKS) if not only else list(only)
    unknown = [name for name in selected if name not in BENCHMARKS]
    if unknown:
        raise ValueError(f"unknown benchmark(s) {unknown}; expected "
                         f"a subset of {list(BENCHMARKS)}")
    if "calibration" not in selected:
        selected.insert(0, "calibration")
    results: Dict[str, dict] = {}
    calibration_rate: Optional[float] = None
    for name in selected:
        size_key, body = BENCHMARKS[name]
        size = _SIZES[size_key][1 if quick else 0]
        ops, best, walls = _measure(body, size, repeats)
        rate = ops / best if best > 0 else float("inf")
        entry = {
            "ops": ops,
            "size": size,
            "repeats": repeats,
            "wall_s": best,
            "wall_s_all": walls,
            "ops_per_sec": rate,
            "peak_rss_kb": peak_rss_kb(),
        }
        if name == "calibration":
            calibration_rate = rate
        elif calibration_rate:
            entry["normalized_ops"] = rate / calibration_rate
        results[name] = entry
    if ("traced_single_site" in results
            and "single_site_pcp" in results):
        untraced = results["single_site_pcp"]["ops_per_sec"]
        traced = results["traced_single_site"]["ops_per_sec"]
        if traced > 0:
            results["traced_single_site"]["tracer_overhead_x"] = (
                untraced / traced)
    for metered_name, plain_name in METERED_PAIRS.items():
        if metered_name in results and plain_name in results:
            plain = results[plain_name]["ops_per_sec"]
            metered = results[metered_name]["ops_per_sec"]
            if metered > 0:
                results[metered_name]["metrics_overhead_x"] = (
                    plain / metered)
    for turbo_name, reference_name in ENGINE_PAIRS.items():
        if turbo_name in results and reference_name in results:
            reference = results[reference_name]["ops_per_sec"]
            turbo = results[turbo_name]["ops_per_sec"]
            if reference > 0:
                results[turbo_name]["engine_speedup_x"] = (
                    turbo / reference)
    import platform
    return {
        "schema": "repro-bench/1",
        # Host wall-clock provenance for the artifact name/metadata
        # only; no simulation state ever reads it.
        "timestamp": time.strftime(  # noqa: RPL001
            "%Y%m%d_%H%M%S", time.localtime()),  # noqa: RPL001
        "quick": quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "results": results,
    }


def write_doc(doc: dict, out_dir: str) -> str:
    """Write ``BENCH_<timestamp>.json`` under ``out_dir``; return path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{doc['timestamp']}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_doc(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("schema") != "repro-bench/1":
        raise ValueError(f"{path}: not a repro-bench/1 document")
    return doc


def format_doc(doc: dict) -> str:
    lines = [f"repro bench — {doc['timestamp']} "
             f"(python {doc['python']}, "
             f"{'quick' if doc.get('quick') else 'full'})",
             f"{'benchmark':<20} {'ops':>10} {'wall s':>9} "
             f"{'ops/sec':>12} {'norm':>8} {'rss KB':>9}"]
    for name, entry in doc["results"].items():
        norm = entry.get("normalized_ops")
        lines.append(
            f"{name:<20} {entry['ops']:>10} {entry['wall_s']:>9.4f} "
            f"{entry['ops_per_sec']:>12.0f} "
            f"{norm if norm is None else format(norm, '.4f')!s:>8} "
            f"{entry.get('peak_rss_kb') or 0:>9}")
    traced = doc["results"].get("traced_single_site", {})
    if "tracer_overhead_x" in traced:
        lines.append(f"tracer overhead: "
                     f"{traced['tracer_overhead_x']:.2f}x the untraced "
                     f"single-site run")
    for metered_name, plain_name in METERED_PAIRS.items():
        metered = doc["results"].get(metered_name, {})
        if "metrics_overhead_x" in metered:
            lines.append(f"metrics overhead ({metered_name}): "
                         f"{metered['metrics_overhead_x']:.2f}x the "
                         f"plain {plain_name} run")
    for turbo_name, reference_name in ENGINE_PAIRS.items():
        turbo = doc["results"].get(turbo_name, {})
        if "engine_speedup_x" in turbo:
            lines.append(f"engine speedup ({turbo_name}): "
                         f"{turbo['engine_speedup_x']:.2f}x the "
                         f"reference {reference_name} run")
    return "\n".join(lines)


def engine_speedup_violations(doc: dict,
                              floors: Dict[str, float]) -> List[str]:
    """Engine pairs whose turbo/reference ratio misses its floor.

    ``floors`` maps a turbo benchmark name to the minimum acceptable
    ``engine_speedup_x``.  A named pair the document lacks is itself a
    violation — a gate that silently cannot fire is not a gate.
    """
    messages = []
    for turbo_name, floor in floors.items():
        speedup = doc["results"].get(turbo_name, {}).get(
            "engine_speedup_x")
        if speedup is None:
            messages.append(
                f"{turbo_name}: no engine_speedup_x in the document "
                f"(benchmark or its reference twin did not run)")
        elif speedup < floor:
            messages.append(
                f"{turbo_name}: {speedup:.2f}x is below the "
                f"{floor:.2f}x engine-speedup floor")
    return messages


def metrics_overhead_violations(doc: dict,
                                limit: float) -> List[str]:
    """Metered benchmarks whose slowdown exceeds ``limit``.

    ``limit`` is a ratio ceiling (1.10 == at most 10% slower than the
    plain baseline).  Pairs the document lacks are skipped — the gate
    only applies to what actually ran.
    """
    messages = []
    for metered_name in METERED_PAIRS:
        overhead = doc["results"].get(metered_name, {}).get(
            "metrics_overhead_x")
        if overhead is not None and overhead > limit:
            messages.append(
                f"{metered_name}: {overhead:.3f}x exceeds the "
                f"{limit:.2f}x metrics-overhead ceiling")
    return messages


# ----------------------------------------------------------------------
# comparison / regression gating
# ----------------------------------------------------------------------
def _comparable_rate(entry: dict, other: dict) -> Tuple[float, float,
                                                        bool]:
    """Rates for old/new, normalized when both sides can be."""
    if "normalized_ops" in entry and "normalized_ops" in other:
        return entry["normalized_ops"], other["normalized_ops"], True
    return entry["ops_per_sec"], other["ops_per_sec"], False


def missing_gated(old: dict, new: dict,
                  gated: Sequence[str]) -> List[str]:
    """Gated benchmarks absent from either document.

    Each entry reads ``name (missing from: old)`` etc.  A gate on a
    benchmark neither document contains can never fire, so the CLI
    refuses such comparisons (exit 3) instead of silently passing.
    """
    messages = []
    for name in gated:
        absent = [label for label, doc in (("old", old), ("new", new))
                  if name not in doc["results"]]
        if absent:
            messages.append(f"{name} (missing from: "
                            f"{', '.join(absent)})")
    return messages


def compare_docs(old: dict, new: dict,
                 gated: Sequence[str] = DEFAULT_GATED,
                 threshold: float = 0.2) -> Tuple[str, List[str]]:
    """Render an A/B table; return (text, regression messages).

    A *gated* benchmark regresses when its (machine-normalized, when
    available) throughput drops by more than ``threshold`` relative to
    the old document.  Non-gated benchmarks are reported but never
    fail the comparison.  Only benchmarks present in both documents
    are compared — callers that gate should first reject comparisons
    where :func:`missing_gated` is non-empty, as the CLI does.
    """
    shared = [name for name in old["results"] if name in new["results"]]
    lines = [f"{'benchmark':<20} {'old ops/s':>12} {'new ops/s':>12} "
             f"{'speedup':>9}  basis"]
    regressions: List[str] = []
    for name in shared:
        if name == "calibration":
            continue
        old_rate, new_rate, normalized = _comparable_rate(
            old["results"][name], new["results"][name])
        speedup = (new_rate / old_rate) if old_rate > 0 else float("inf")
        basis = "normalized" if normalized else "raw"
        gate = ""
        if name in gated:
            gate = " [gated]"
            if speedup < 1.0 - threshold:
                regressions.append(
                    f"{name}: {speedup:.3f}x is below the "
                    f"{1.0 - threshold:.2f}x regression floor "
                    f"({basis} throughput)")
        lines.append(
            f"{name:<20} "
            f"{old['results'][name]['ops_per_sec']:>12.0f} "
            f"{new['results'][name]['ops_per_sec']:>12.0f} "
            f"{speedup:>8.3f}x  {basis}{gate}")
    return "\n".join(lines), regressions


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "compare":
        return _compare_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Microbenchmark the simulation hot path and emit a "
                    "BENCH_<timestamp>.json document.")
    parser.add_argument("--quick", action="store_true",
                        help="small problem sizes (CI smoke)")
    parser.add_argument("--only", default=None,
                        help="comma-separated benchmark subset "
                             f"(of: {', '.join(BENCHMARKS)})")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed repetitions per benchmark; the "
                             "best (minimum) wall time is kept")
    parser.add_argument("--out", default="benchmarks",
                        help="directory for the BENCH_*.json artifact "
                             "(default: benchmarks/)")
    parser.add_argument("--no-write", action="store_true",
                        help="print the table only; write no artifact")
    parser.add_argument("--json", action="store_true",
                        help="print the JSON document to stdout")
    parser.add_argument("--max-metrics-overhead", type=float,
                        default=None, metavar="RATIO",
                        help="fail (exit 1) when a metered benchmark "
                             "is more than RATIO x its plain baseline "
                             "(e.g. 1.10 gates at 10%% overhead)")
    parser.add_argument("--min-engine-speedup", action="append",
                        default=None, metavar="NAME=RATIO",
                        help="fail (exit 1) when engine pair NAME's "
                             "engine_speedup_x is below RATIO (e.g. "
                             "turbo_batched_dispatch=10); repeatable")
    parser.add_argument("--engine", choices=("reference", "turbo"),
                        default=None,
                        help="force the config-driven benchmarks "
                             "(single_site_*, dist_*) onto one engine "
                             "via REPRO_ENGINE; the turbo_*/reference "
                             "pair benchmarks pin their kernels "
                             "explicitly and are unaffected")
    args = parser.parse_args(argv)
    if args.repeat < 1:
        print("error: --repeat must be >= 1", file=sys.stderr)
        return 2
    if (args.max_metrics_overhead is not None
            and args.max_metrics_overhead < 1.0):
        print("error: --max-metrics-overhead must be >= 1.0",
              file=sys.stderr)
        return 2
    only = ([token.strip() for token in args.only.split(",")
             if token.strip()] if args.only else None)
    floors: Dict[str, float] = {}
    for spec in args.min_engine_speedup or ():
        name, sep, ratio = spec.partition("=")
        try:
            floors[name.strip()] = float(ratio)
        except ValueError:
            sep = ""
        if not sep:
            print(f"error: --min-engine-speedup expects NAME=RATIO, "
                  f"got {spec!r}", file=sys.stderr)
            return 2
    previous_engine = os.environ.get("REPRO_ENGINE")
    if args.engine is not None:
        os.environ["REPRO_ENGINE"] = args.engine
    try:
        doc = run_bench(quick=args.quick, only=only,
                        repeats=args.repeat)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if args.engine is not None:
            if previous_engine is None:
                del os.environ["REPRO_ENGINE"]
            else:
                os.environ["REPRO_ENGINE"] = previous_engine
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(format_doc(doc))
    if not args.no_write:
        path = write_doc(doc, args.out)
        print(f"\nwrote {path}", file=sys.stderr)
    if args.max_metrics_overhead is not None:
        violations = metrics_overhead_violations(
            doc, args.max_metrics_overhead)
        if violations:
            print("\nMETRICS OVERHEAD:", file=sys.stderr)
            for message in violations:
                print(f"  {message}", file=sys.stderr)
            return 1
    if floors:
        violations = engine_speedup_violations(doc, floors)
        if violations:
            print("\nENGINE SPEEDUP:", file=sys.stderr)
            for message in violations:
                print(f"  {message}", file=sys.stderr)
            return 1
    return 0


def _compare_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench compare",
        description="Compare two BENCH_*.json documents and enforce a "
                    "regression threshold on the gated benchmarks.")
    parser.add_argument("old", help="baseline document (A)")
    parser.add_argument("new", help="candidate document (B)")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="maximum tolerated throughput drop on "
                             "gated benchmarks (default 0.2 = 20%%)")
    parser.add_argument("--gate", default=",".join(DEFAULT_GATED),
                        help="comma-separated benchmarks the threshold "
                             "applies to")
    args = parser.parse_args(argv)
    if not 0.0 <= args.threshold < 1.0:
        print("error: --threshold must be in [0, 1)", file=sys.stderr)
        return 2
    try:
        old, new = load_doc(args.old), load_doc(args.new)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    gated = [token.strip() for token in args.gate.split(",")
             if token.strip()]
    missing = missing_gated(old, new, gated)
    if missing:
        print("error: gated benchmark(s) absent from the compared "
              "documents — the regression gate cannot apply:",
              file=sys.stderr)
        for message in missing:
            print(f"  {message}", file=sys.stderr)
        print("re-run 'repro bench' with these benchmarks included, "
              "or adjust --gate", file=sys.stderr)
        return 3
    text, regressions = compare_docs(old, new, gated=gated,
                                     threshold=args.threshold)
    print(text)
    if regressions:
        print("\nREGRESSION:", file=sys.stderr)
        for message in regressions:
            print(f"  {message}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
