"""Ablation studies the paper motivates but does not plot.

- **A1** (§5, open question): read/write lock semantics vs exclusive-only
  locks under the ceiling protocol ("the use of read and write semantics
  of a lock may lead to worse performance in terms of schedulability
  than the use of exclusive semantics ... Is it necessarily true?").
- **A2** (§3.1): basic priority inheritance (chained blocking) vs the
  ceiling protocol.
- **A3** (§3.3, the omitted experiment): database size — conflict
  probability — sweep.
- **A4** (§4, future work): temporal consistency of replicated views —
  staleness of secondary copies vs communication delay, and the
  multiversion snapshot mechanism.
- **A5** (deadlock handling): the paper's implicit no-resolution model
  vs detect-and-restart victim policies for 2PL.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..core.builder import SingleSiteSystem
from ..core.config import DistributedConfig
from ..core.experiment import replicate_many
from ..core.metrics import aggregate_runs
from ..core.reporting import format_table
from ..faults import FaultPlan, SiteCrash
from .figures import distributed_config, single_site_config

# A1/A2/A3/A6/A7 expand into one repro.exec unit batch each (so
# ``jobs``/``cache`` parallelise and memoise the whole ablation); A4
# and A5 instrument the simulation in-process (sampler co-processes,
# victim-policy pokes) and stay serial.


def _a1_config(protocol: str, size: int,
               read_fraction: float) -> object:
    base = single_site_config(protocol, size)
    return dataclasses.replace(
        base,
        workload=dataclasses.replace(
            base.workload, read_only_fraction=read_fraction,
            write_fraction=0.5))


def run_rw_vs_exclusive(sizes: Sequence[int] = (2, 8, 14, 20),
                        read_fraction: float = 0.6,
                        replications: int = 5, *,
                        jobs: Optional[int] = None,
                        cache=None, progress=None) -> List[Dict]:
    """A1: protocol C vs Cx on a read-heavy mixed workload."""
    points = [(size, protocol) for size in sizes
              for protocol in ("C", "Cx")]
    summaries = replicate_many(
        [_a1_config(protocol, size, read_fraction)
         for size, protocol in points],
        replications=replications, jobs=jobs, cache=cache,
        progress=progress)
    by_point = dict(zip(points, summaries))
    series = []
    for size in sizes:
        row: Dict = {"size": size}
        for protocol in ("C", "Cx"):
            aggregated = by_point[(size, protocol)]
            row[f"throughput_{protocol}"] = aggregated["throughput"]
            row[f"missed_{protocol}"] = aggregated["percent_missed"]
        series.append(row)
    return series


def format_rw_vs_exclusive(series: List[Dict]) -> str:
    headers = ["size", "C thr", "Cx thr", "C %missed", "Cx %missed"]
    rows = [[row["size"], row["throughput_C"], row["throughput_Cx"],
             row["missed_C"], row["missed_Cx"]] for row in series]
    return format_table(headers, rows,
                        title="Ablation A1 - read/write vs exclusive "
                              "lock semantics under the ceiling "
                              "protocol (read-heavy mix)")


def run_inheritance_vs_ceiling(sizes: Sequence[int] = (2, 8, 14, 20),
                               replications: int = 5, *,
                               jobs: Optional[int] = None,
                               cache=None, progress=None) -> List[Dict]:
    """A2: protocols P / PI / C across the size sweep."""
    points = [(size, protocol) for size in sizes
              for protocol in ("P", "PI", "C")]
    summaries = replicate_many(
        [single_site_config(protocol, size)
         for size, protocol in points],
        replications=replications, jobs=jobs, cache=cache,
        progress=progress)
    by_point = dict(zip(points, summaries))
    series = []
    for size in sizes:
        row: Dict = {"size": size}
        for protocol in ("P", "PI", "C"):
            aggregated = by_point[(size, protocol)]
            row[f"missed_{protocol}"] = aggregated["percent_missed"]
            row[f"throughput_{protocol}"] = aggregated["throughput"]
        series.append(row)
    return series


def format_inheritance(series: List[Dict]) -> str:
    headers = ["size", "P %missed", "PI %missed", "C %missed",
               "P thr", "PI thr", "C thr"]
    rows = [[row["size"], row["missed_P"], row["missed_PI"],
             row["missed_C"], row["throughput_P"], row["throughput_PI"],
             row["throughput_C"]] for row in series]
    return format_table(headers, rows,
                        title="Ablation A2 - priority inheritance alone "
                              "vs priority ceiling")


def run_dbsize_sweep(db_sizes: Sequence[int] = (100, 200, 400, 800),
                     size: int = 14,
                     replications: int = 5, *,
                     jobs: Optional[int] = None,
                     cache=None, progress=None) -> List[Dict]:
    """A3: conflict probability via database size (the experiment the
    paper omitted because it 'only confirms' the others)."""
    points = [(db_size, protocol) for db_size in db_sizes
              for protocol in ("C", "L")]
    summaries = replicate_many(
        [dataclasses.replace(single_site_config(protocol, size),
                             db_size=db_size)
         for db_size, protocol in points],
        replications=replications, jobs=jobs, cache=cache,
        progress=progress)
    by_point = dict(zip(points, summaries))
    series = []
    for db_size in db_sizes:
        row: Dict = {"db_size": db_size}
        for protocol in ("C", "L"):
            aggregated = by_point[(db_size, protocol)]
            row[f"missed_{protocol}"] = aggregated["percent_missed"]
            row[f"deadlocks_{protocol}"] = aggregated["cc_deadlocks"]
        series.append(row)
    return series


def format_dbsize(series: List[Dict]) -> str:
    headers = ["db size", "C %missed", "L %missed", "L deadlocks"]
    rows = [[row["db_size"], row["missed_C"], row["missed_L"],
             row["deadlocks_L"]] for row in series]
    return format_table(headers, rows,
                        title="Ablation A3 - database size (conflict "
                              "probability) sweep at size 14")


def run_temporal_staleness(delays: Sequence[float] = (0.0, 2.0, 5.0,
                                                      10.0),
                           replications: int = 3,
                           sample_interval: float = 1.0) -> List[Dict]:
    """A4: peak secondary-copy staleness observed *during* the run
    under the local-ceiling architecture, vs communication delay.

    Staleness converges to zero once the system drains (replicas catch
    up), so a sampler process polls the catalog every
    ``sample_interval`` virtual time units and the peak is reported.
    """
    from ..dist.system import DistributedSystem
    from ..kernel.syscalls import Delay

    series = []
    for delay in delays:
        rows = []
        for replication in range(replications):
            config = dataclasses.replace(
                distributed_config("local", delay, 0.0),
                seed=1 + 1000 * replication, temporal_versions=True)
            system = DistributedSystem(config)
            peak = [0.0]

            def sampler():
                while True:
                    yield Delay(sample_interval)
                    peak[0] = max(peak[0], system.max_staleness())

            system.kernel.spawn(sampler(), "sampler")
            horizon = (config.workload.n_transactions
                       * config.workload.mean_interarrival * 3.0)
            system.run(until=horizon)
            row = system.summary()
            latencies = [latency for site in system.sites
                         for latency in site.replica_apply_latencies]
            latencies.sort()
            rows.append({
                "peak_staleness": peak[0],
                "mean_apply_latency": (sum(latencies) / len(latencies)
                                       if latencies else 0.0),
                "p95_apply_latency": (latencies[int(0.95
                                                    * (len(latencies)
                                                       - 1))]
                                      if latencies else 0.0),
                "percent_missed": row["percent_missed"],
            })
        aggregated = aggregate_runs(rows)
        aggregated["delay"] = delay
        series.append(aggregated)
    return series


def format_temporal(series: List[Dict]) -> str:
    headers = ["comm delay", "mean apply latency", "p95 apply latency",
               "peak staleness", "%missed"]
    rows = [[row["delay"], row["mean_apply_latency"],
             row["p95_apply_latency"], row["peak_staleness"],
             row["percent_missed"]] for row in series]
    return format_table(headers, rows,
                        title="Ablation A4 - temporal consistency: "
                              "replica update latency and view "
                              "staleness vs communication delay "
                              "(local ceiling, all-update workload)")


def run_snapshot_reads(mixes: Sequence[float] = (0.25, 0.5, 0.75),
                       comm_delay: float = 3.0,
                       replications: int = 5, *,
                       jobs: Optional[int] = None,
                       cache=None, progress=None) -> List[Dict]:
    """A6: §4's multiversion snapshot mechanism as a scheduling
    optimisation — read-only transactions served lock-free from the
    version store vs classic read locks, under the local ceiling."""
    points = [(mix, snapshots) for mix in mixes
              for snapshots in (False, True)]
    summaries = replicate_many(
        [dataclasses.replace(distributed_config("local", comm_delay,
                                                mix),
                             temporal_versions=True,
                             snapshot_reads=snapshots)
         for mix, snapshots in points],
        replications=replications, jobs=jobs, cache=cache,
        progress=progress)
    by_point = dict(zip(points, summaries))
    series = []
    for mix in mixes:
        row: Dict = {"mix": mix}
        for snapshots in (False, True):
            aggregated = by_point[(mix, snapshots)]
            label = "snapshot" if snapshots else "locking"
            row[f"missed_{label}"] = aggregated["percent_missed"]
            row[f"throughput_{label}"] = aggregated["throughput"]
        series.append(row)
    return series


def format_snapshot_reads(series: List[Dict]) -> str:
    headers = ["read-only fraction", "%missed (read locks)",
               "%missed (snapshots)", "thr (read locks)",
               "thr (snapshots)"]
    rows = [[row["mix"], row["missed_locking"], row["missed_snapshot"],
             row["throughput_locking"], row["throughput_snapshot"]]
            for row in series]
    return format_table(headers, rows,
                        title="Ablation A6 - lock-free snapshot reads "
                              "vs read locks (local ceiling, "
                              "comm delay 3)")


def run_io_models(size: int = 11,
                  server_counts: Sequence[Optional[int]] = (None, 8, 2,
                                                            1),
                  replications: int = 5, *,
                  jobs: Optional[int] = None,
                  cache=None, progress=None) -> List[Dict]:
    """A7: sensitivity to the parallel-I/O assumption.

    The paper notes 2PL's small-transaction advantage relies on
    "concurrency ... fully achieved with an assumption of parallel I/O
    processing".  Bounding the I/O subsystem to k disks removes that
    concurrency and should close (or invert) the gap to the ceiling
    protocol, whose near-serial pipeline never needed it.
    """
    points = [(servers, protocol) for servers in server_counts
              for protocol in ("C", "L")]
    summaries = replicate_many(
        [dataclasses.replace(single_site_config(protocol, size),
                             io_servers=servers)
         for servers, protocol in points],
        replications=replications, jobs=jobs, cache=cache,
        progress=progress)
    by_point = dict(zip(points, summaries))
    series = []
    for servers in server_counts:
        row: Dict = {"io_servers": servers if servers is not None
                     else "inf"}
        for protocol in ("C", "L"):
            aggregated = by_point[(servers, protocol)]
            row[f"missed_{protocol}"] = aggregated["percent_missed"]
            row[f"throughput_{protocol}"] = aggregated["throughput"]
        series.append(row)
    return series


def format_io_models(series: List[Dict]) -> str:
    headers = ["I/O servers", "C thr", "L thr", "C %missed",
               "L %missed"]
    rows = [[row["io_servers"], row["throughput_C"],
             row["throughput_L"], row["missed_C"], row["missed_L"]]
            for row in series]
    return format_table(headers, rows,
                        title="Ablation A7 - bounded disks vs the "
                              "parallel-I/O assumption (size 11)")


def run_deadlock_policies(size: int = 17,
                          policies: Sequence[str] = ("none", "requester",
                                                     "lowest_priority",
                                                     "youngest"),
                          replications: int = 5) -> List[Dict]:
    """A5: 2PL deadlock handling — the paper's implicit wait-until-
    deadline model vs detect-and-restart policies."""
    series = []
    for policy in policies:
        rows = []
        for replication in range(replications):
            config = dataclasses.replace(
                single_site_config("P", size),
                seed=1 + 1000 * replication)
            system = SingleSiteSystem(config)
            system.cc.victim_policy = policy
            system.run()
            rows.append(system.summary())
        aggregated = aggregate_runs(rows)
        aggregated["policy"] = policy
        series.append(aggregated)
    return series


def format_deadlock_policies(series: List[Dict]) -> str:
    headers = ["victim policy", "%missed", "throughput", "deadlocks",
               "restarts"]
    rows = [[row["policy"], row["percent_missed"], row["throughput"],
             row["cc_deadlocks"], row["restarts"]] for row in series]
    return format_table(headers, rows,
                        title="Ablation A5 - 2PL deadlock resolution "
                              "policies at size 17")


# ----------------------------------------------------------------------
# A8: fault injection — loss and crash degradation, both architectures
# ----------------------------------------------------------------------
def fault_loss_plan(loss_rate: float) -> FaultPlan:
    """A message-loss plan (plus the retry knobs it implies)."""
    return FaultPlan(loss_rate=loss_rate)


def fault_crash_plan(n_sites: int, horizon: float,
                     down_for: float) -> FaultPlan:
    """One crash per site, staggered evenly across ``horizon``."""
    if down_for <= 0.0:
        return FaultPlan()
    crashes = tuple(
        SiteCrash(site=site,
                  at=(site + 1) * horizon / (n_sites + 1),
                  down_for=down_for)
        for site in range(n_sites))
    return FaultPlan(crashes=crashes)


def _a8_config(mode: str, plan: FaultPlan,
               n_transactions: int) -> DistributedConfig:
    base = distributed_config(mode, comm_delay=2.0,
                              read_only_fraction=0.5,
                              n_transactions=n_transactions)
    return dataclasses.replace(
        base, faults=plan if plan.active or plan.needs_recovery
        else None)


def run_fault_ablation(loss_rates: Sequence[float] = (0.0, 0.05, 0.1),
                       crash_downtimes: Sequence[float] = (0.0, 40.0),
                       replications: int = 5,
                       n_transactions: int = 120, *,
                       jobs: Optional[int] = None,
                       cache=None, progress=None) -> List[Dict]:
    """A8: degradation under message loss and site crashes.

    The paper assumes a fair-weather network; this ablation measures
    what its two architectures give up when the network is not fair:
    %missed and throughput for both modes as the loss rate rises, and
    under one staggered crash per site of increasing length.  The
    zero-loss / zero-downtime points run the historical fault-free
    path, so each sweep's first row doubles as the regression baseline.
    """
    base = distributed_config("local", comm_delay=2.0,
                              read_only_fraction=0.5,
                              n_transactions=n_transactions)
    horizon = (base.workload.n_transactions
               * base.workload.mean_interarrival)
    points: List[Dict] = []
    for loss in loss_rates:
        points.append({"kind": "loss", "x": loss,
                       "plan": fault_loss_plan(loss)})
    for down_for in crash_downtimes:
        points.append({"kind": "crash", "x": down_for,
                       "plan": fault_crash_plan(base.n_sites, horizon,
                                                down_for)})
    configs = [_a8_config(mode, point["plan"], n_transactions)
               for point in points for mode in ("local", "global")]
    summaries = replicate_many(configs, replications=replications,
                               jobs=jobs, cache=cache,
                               progress=progress)
    series = []
    for index, point in enumerate(points):
        local = summaries[2 * index]
        global_ = summaries[2 * index + 1]
        series.append({
            "kind": point["kind"],
            "x": point["x"],
            "local_missed": local["percent_missed"],
            "global_missed": global_["percent_missed"],
            "local_throughput": local["throughput"],
            "global_throughput": global_["throughput"],
            "messages_lost": (local.get("messages_lost", 0.0)
                              + global_.get("messages_lost", 0.0)),
        })
    return series


def format_fault_ablation(series: List[Dict]) -> str:
    headers = ["fault", "level", "local %missed", "global %missed",
               "local tput", "global tput", "msgs lost"]
    labels = {"loss": "loss rate", "crash": "downtime"}
    rows = [[labels[row["kind"]], row["x"], row["local_missed"],
             row["global_missed"], row["local_throughput"],
             row["global_throughput"], row["messages_lost"]]
            for row in series]
    return format_table(headers, rows,
                        title="Ablation A8 - fault injection: message "
                              "loss and site crashes, both "
                              "architectures")
