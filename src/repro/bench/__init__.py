"""Benchmark harness: figure and ablation sweeps.

``benchmarks/`` contains thin pytest-benchmark wrappers; the sweep
logic lives here so examples and notebooks can reuse it.
"""

from .ablations import (fault_crash_plan, fault_loss_plan,
                        format_dbsize, format_deadlock_policies,
                        format_fault_ablation, format_inheritance,
                        format_rw_vs_exclusive,
                        format_io_models, format_snapshot_reads,
                        format_temporal, run_dbsize_sweep,
                        run_deadlock_policies, run_fault_ablation,
                        run_io_models,
                        run_inheritance_vs_ceiling, run_rw_vs_exclusive,
                        run_snapshot_reads, run_temporal_staleness)
from .figures import (FIG4_DELAYS, FIG5_DELAYS, FIG6_DELAYS,
                      FIG23_SIZES, FIG46_MIXES, distributed_config,
                      format_fig2, format_fig3, format_fig4,
                      format_fig5, format_fig6, run_fig2_fig3,
                      run_fig4, run_fig5, run_fig6,
                      single_site_config)
from .model_vs_sim import format_model_vs_sim, run_model_vs_sim
from .protocol_suite import (PROTOCOL_SUITE_SIZES,
                             format_protocol_suite,
                             run_protocol_suite, suite_protocols)

__all__ = [
    "FIG23_SIZES",
    "FIG46_MIXES",
    "FIG4_DELAYS",
    "FIG5_DELAYS",
    "FIG6_DELAYS",
    "distributed_config",
    "format_dbsize",
    "format_deadlock_policies",
    "format_fig2",
    "format_fig3",
    "format_fig4",
    "format_fig5",
    "format_fig6",
    "format_inheritance",
    "format_io_models",
    "format_model_vs_sim",
    "format_protocol_suite",
    "format_rw_vs_exclusive",
    "format_snapshot_reads",
    "format_temporal",
    "fault_crash_plan",
    "fault_loss_plan",
    "format_fault_ablation",
    "run_dbsize_sweep",
    "run_deadlock_policies",
    "run_fault_ablation",
    "run_fig2_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_inheritance_vs_ceiling",
    "run_io_models",
    "run_model_vs_sim",
    "run_protocol_suite",
    "run_rw_vs_exclusive",
    "run_snapshot_reads",
    "run_temporal_staleness",
    "single_site_config",
    "suite_protocols",
    "PROTOCOL_SUITE_SIZES",
]
