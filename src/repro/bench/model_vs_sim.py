"""Model-vs-simulation overlay: the analytic model as a bench figure.

Not a figure from the paper — a repo-grown companion that overlays the
analytic model of :mod:`repro.model` on the measured Figure 2/3 curves
at three operating points per protocol (light, knee, thrash), so a
reader can see at a glance where the closed forms track the simulator
and where they are documented to diverge (DESIGN.md §10).

The simulated side reuses the Figure 2/3 configurations, so when those
figures' rows are in the result cache this figure costs only the model
evaluations (microseconds).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.experiment import replicate_many
from ..exec.cache import CacheSpec
from ..model.response import predict_summary
from ..protocols import REGISTRY
from .figures import single_site_config

#: Protocols overlaid — the registry's ranked overlay cast (the
#: Figure 2/3 protocols, C then P then L).
MODEL_VS_SIM_PROTOCOLS = REGISTRY.overlay_cast()
#: Light-load, knee, and thrash operating points of the size sweep.
MODEL_VS_SIM_SIZES = (2, 8, 14)
#: Summary metrics shown side by side.
MODEL_VS_SIM_METRICS = ("percent_missed", "mean_blocked_time",
                        "throughput")


def run_model_vs_sim(replications: int = 5, *,
                     jobs: Optional[int] = None,
                     cache: CacheSpec = None,
                     progress=None) -> List[Dict[str, float]]:
    """One row per (protocol, size): sim and model values side by side."""
    grid = [(protocol, size)
            for protocol in MODEL_VS_SIM_PROTOCOLS
            for size in MODEL_VS_SIM_SIZES]
    configs = [single_site_config(protocol, size)
               for protocol, size in grid]
    sims = replicate_many(configs, replications=replications,
                          jobs=jobs, cache=cache, progress=progress)
    rows = []
    for (protocol, size), config, sim in zip(grid, configs, sims):
        model = predict_summary(config)
        row: Dict[str, float] = {"protocol": protocol,
                                 "size": float(size)}
        for metric in MODEL_VS_SIM_METRICS:
            row[f"sim_{metric}"] = float(sim[metric])
            row[f"model_{metric}"] = float(model[metric])
        rows.append(row)
    return rows


def format_model_vs_sim(rows: List[Dict[str, float]]) -> str:
    lines = ["Analytic model vs simulation (single site, "
             "Figure 2/3 workloads)",
             f"{'proto':>5} {'size':>4} "
             f"{'miss% sim':>10} {'model':>8} "
             f"{'blocked sim':>12} {'model':>8} "
             f"{'thru sim':>9} {'model':>8}"]
    for row in rows:
        lines.append(
            f"{row['protocol']:>5} {row['size']:>4.0f} "
            f"{row['sim_percent_missed']:>10.2f} "
            f"{row['model_percent_missed']:>8.2f} "
            f"{row['sim_mean_blocked_time']:>12.2f} "
            f"{row['model_mean_blocked_time']:>8.2f} "
            f"{row['sim_throughput']:>9.3f} "
            f"{row['model_throughput']:>8.3f}")
    lines.append("model: closed-form blocking decomposition "
                 "(repro.model); see 'repro validate-model' for the "
                 "full divergence report")
    return "\n".join(lines)
