"""Figure-regeneration functions: one per figure in the paper.

Each function runs the sweep behind one figure of Son & Chang (ICDCS
1990) and returns the plotted series as a list of row dicts; the
``format_*`` helpers render them as the text tables the benchmark
harness prints and EXPERIMENTS.md records.

Every sweep expands into one flat batch of run units handed to
:mod:`repro.exec` in a single engine call, so ``jobs``/``cache``
(or ``REPRO_JOBS``/``REPRO_CACHE_DIR``) parallelise and memoise the
whole figure — not one sweep point at a time — while the merged series
stays identical to a serial run.

Calibration
-----------
The paper gives no parameter table, so the workloads are calibrated to
its stated regime (single CPU per site, parallel I/O, heavy load at the
large-size end, memory-resident 3-site network for the distributed
study).  The shapes — who wins, by roughly what factor, where the
crossovers fall — are the reproduction target, not absolute numbers;
see EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..core.config import (DistributedConfig, SingleSiteConfig,
                           TimingConfig, WorkloadConfig)
from ..core.experiment import replicate_many
from ..core.metrics import missed_ratio, throughput_ratio
from ..core.reporting import format_table
from ..txn.manager import CostModel

#: Transaction sizes swept in Figures 2 and 3 (up to 10% of the DB).
FIG23_SIZES = (2, 5, 8, 11, 14, 17, 20)
#: Communication delays swept in Figure 5 (time units).
FIG5_DELAYS = (0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0)
#: Transaction mixes (fraction read-only) swept in Figures 4 and 6.
FIG46_MIXES = (0.0, 0.25, 0.5, 0.75)
#: Delays at which Figure 4 plots its mix curves / Figure 6 its two
#: specific curves.
FIG4_DELAYS = (0.0, 2.0, 8.0)
FIG6_DELAYS = (2.0, 8.0)


def single_site_config(protocol: str, size: int,
                       n_transactions: int = 200) -> SingleSiteConfig:
    """The calibrated Figure-2/3 configuration at one sweep point."""
    return SingleSiteConfig(
        protocol=protocol, db_size=200,
        workload=WorkloadConfig(n_transactions=n_transactions,
                                mean_interarrival=25.0,
                                transaction_size=size,
                                size_jitter=max(1, size // 3)),
        timing=TimingConfig(slack_factor=8.0),
        costs=CostModel(cpu_per_object=1.0, io_per_object=2.0))


def distributed_config(mode: str, comm_delay: float,
                       read_only_fraction: float,
                       n_transactions: int = 150) -> DistributedConfig:
    """The calibrated Figure-4/5/6 configuration at one sweep point."""
    return DistributedConfig(
        mode=mode, comm_delay=comm_delay, db_size=300,
        workload=WorkloadConfig(n_transactions=n_transactions,
                                mean_interarrival=2.5,
                                transaction_size=6, size_jitter=2,
                                read_only_fraction=read_only_fraction),
        timing=TimingConfig(slack_factor=8.0),
        costs=CostModel(cpu_per_object=1.0, io_per_object=0.0))


# ----------------------------------------------------------------------
# Figures 2 and 3: single-site size sweeps
# ----------------------------------------------------------------------
def run_fig2_fig3(protocols: Sequence[str] = ("C", "P", "L"),
                  sizes: Sequence[int] = FIG23_SIZES,
                  replications: int = 5,
                  n_transactions: int = 200, *,
                  jobs: Optional[int] = None, cache=None,
                  progress=None) -> List[Dict]:
    """One row per size: throughput and %missed per protocol."""
    points = [(size, protocol) for size in sizes
              for protocol in protocols]
    summaries = replicate_many(
        [single_site_config(protocol, size, n_transactions)
         for size, protocol in points],
        replications=replications, jobs=jobs, cache=cache,
        progress=progress)
    by_point = dict(zip(points, summaries))
    series = []
    for size in sizes:
        row: Dict = {"size": size}
        for protocol in protocols:
            aggregated = by_point[(size, protocol)]
            row[f"throughput_{protocol}"] = aggregated["throughput"]
            row[f"missed_{protocol}"] = aggregated["percent_missed"]
            row[f"deadlocks_{protocol}"] = aggregated["cc_deadlocks"]
        series.append(row)
    return series


def format_fig2(series: List[Dict],
                protocols: Sequence[str] = ("C", "P", "L")) -> str:
    headers = ["size"] + [f"{p} (objects/sec)" for p in protocols]
    rows = [[row["size"]] + [row[f"throughput_{p}"] for p in protocols]
            for row in series]
    return format_table(headers, rows,
                        title="Figure 2 - Transaction Throughput "
                              "(normalised, committed objects/sec)")


def format_fig3(series: List[Dict],
                protocols: Sequence[str] = ("C", "P", "L")) -> str:
    headers = (["size"] + [f"{p} (%missed)" for p in protocols]
               + [f"{p} (deadlocks)" for p in protocols])
    rows = [[row["size"]]
            + [row[f"missed_{p}"] for p in protocols]
            + [row[f"deadlocks_{p}"] for p in protocols]
            for row in series]
    return format_table(headers, rows,
                        title="Figure 3 - Percentage of Deadline-"
                              "Missing Transactions")


# ----------------------------------------------------------------------
# Figure 4: throughput ratio (local/global) vs transaction mix
# ----------------------------------------------------------------------
def run_fig4(mixes: Sequence[float] = FIG46_MIXES,
             delays: Sequence[float] = FIG4_DELAYS,
             replications: int = 5,
             n_transactions: int = 150, *,
             jobs: Optional[int] = None, cache=None,
             progress=None) -> List[Dict]:
    points = [(mix, delay, mode) for mix in mixes for delay in delays
              for mode in ("local", "global")]
    summaries = replicate_many(
        [distributed_config(mode, delay, mix, n_transactions)
         for mix, delay, mode in points],
        replications=replications, jobs=jobs, cache=cache,
        progress=progress)
    by_point = dict(zip(points, summaries))
    series = []
    for mix in mixes:
        row: Dict = {"mix": mix}
        for delay in delays:
            local = by_point[(mix, delay, "local")]
            global_ = by_point[(mix, delay, "global")]
            row[f"ratio_d{delay:g}"] = throughput_ratio(
                local["throughput"], global_["throughput"])
            row[f"local_d{delay:g}"] = local["throughput"]
            row[f"global_d{delay:g}"] = global_["throughput"]
        series.append(row)
    return series


def format_fig4(series: List[Dict],
                delays: Sequence[float] = FIG4_DELAYS) -> str:
    headers = ["read-only fraction"] + [f"ratio @ delay {d:g}"
                                        for d in delays]
    rows = [[row["mix"]] + [row[f"ratio_d{d:g}"] for d in delays]
            for row in series]
    return format_table(headers, rows,
                        title="Figure 4 - Transaction Throughput Ratio "
                              "(local ceiling / global ceiling)")


# ----------------------------------------------------------------------
# Figure 5: deadline-missing ratio (global/local) vs delay
# ----------------------------------------------------------------------
def run_fig5(delays: Sequence[float] = FIG5_DELAYS,
             mix: float = 0.5, replications: int = 5,
             n_transactions: int = 150, *,
             jobs: Optional[int] = None, cache=None,
             progress=None) -> List[Dict]:
    points = [(delay, mode) for delay in delays
              for mode in ("local", "global")]
    summaries = replicate_many(
        [_fig5_config(mode, delay, mix, n_transactions)
         for delay, mode in points],
        replications=replications, jobs=jobs, cache=cache,
        progress=progress)
    by_point = dict(zip(points, summaries))
    series = []
    for delay in delays:
        local = by_point[(delay, "local")]
        global_ = by_point[(delay, "global")]
        series.append({
            "delay": delay,
            "local_missed": local["percent_missed"],
            "global_missed": global_["percent_missed"],
            "ratio": missed_ratio(global_["percent_missed"],
                                  local["percent_missed"]),
        })
    return series


def _fig5_config(mode: str, delay: float, mix: float,
                 n_transactions: int) -> DistributedConfig:
    # Figure 5 runs slightly below the Figure-4 load so the local
    # approach's miss floor is low enough for the paper's ">16x" ratio
    # to be observable rather than clipped by the denominator.
    base = distributed_config(mode, delay, mix, n_transactions)
    return dataclasses.replace(
        base,
        workload=dataclasses.replace(base.workload,
                                     mean_interarrival=3.0),
        timing=TimingConfig(slack_factor=10.0))


def format_fig5(series: List[Dict]) -> str:
    headers = ["comm delay", "global %missed", "local %missed",
               "ratio (global/local)"]
    rows = [[row["delay"], row["global_missed"], row["local_missed"],
             row["ratio"]] for row in series]
    return format_table(headers, rows,
                        title="Figure 5 - Deadline Missing Ratio "
                              "(50% read-only / 50% update)")


# ----------------------------------------------------------------------
# Figure 6: %missed vs mix at two specific delays
# ----------------------------------------------------------------------
def run_fig6(mixes: Sequence[float] = FIG46_MIXES,
             delays: Sequence[float] = FIG6_DELAYS,
             replications: int = 5,
             n_transactions: int = 150, *,
             jobs: Optional[int] = None, cache=None,
             progress=None) -> List[Dict]:
    points = [(mix, delay, mode) for mix in mixes for delay in delays
              for mode in ("local", "global")]
    summaries = replicate_many(
        [distributed_config(mode, delay, mix, n_transactions)
         for mix, delay, mode in points],
        replications=replications, jobs=jobs, cache=cache,
        progress=progress)
    by_point = dict(zip(points, summaries))
    series = []
    for mix in mixes:
        row: Dict = {"mix": mix}
        for delay in delays:
            for mode in ("local", "global"):
                row[f"{mode}_d{delay:g}"] = by_point[
                    (mix, delay, mode)]["percent_missed"]
        series.append(row)
    return series


def format_fig6(series: List[Dict],
                delays: Sequence[float] = FIG6_DELAYS) -> str:
    headers = ["read-only fraction"]
    for delay in delays:
        headers += [f"local %missed @ d={delay:g}",
                    f"global %missed @ d={delay:g}"]
    rows = []
    for row in series:
        cells = [row["mix"]]
        for delay in delays:
            cells += [row[f"local_d{delay:g}"],
                      row[f"global_d{delay:g}"]]
        rows.append(cells)
    return format_table(headers, rows,
                        title="Figure 6 - Deadline Missing Transaction "
                              "Percentage vs Transaction Mix")
