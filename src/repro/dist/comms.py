"""Request/reply transports for the transaction managers.

Two interchangeable strategies sit between a TM and the network:

- :class:`DirectComms` — the historical exchange: send once, block on
  the reply port forever.  Correct when every message arrives exactly
  once (no fault plan, or a plan that only re-times deliveries), and
  **bit-identical** to the pre-fault code path: same sends, same
  syscalls, no timers, no RNG.
- :class:`ReliableComms` — the paper's "time-out mechanism will
  unblock the sender", grown into a protocol: every receive carries a
  timeout; on expiry the request is re-sent with exponentially
  escalating patience (bounded by a cap); replies that do not match
  the outstanding request (late duplicates, re-granted locks) are
  discarded and counted.  In-flight transaction RPCs retry without an
  attempt bound — the transaction's deadline timer is the liveness
  backstop — while fire-and-forget cleanup (lock release, abort
  notices, replica propagation) is carried by bounded-attempt
  :func:`courier` processes so nothing outlives the run.

Servers are deduplicating and idempotent (see the ceiling manager and
replica applier), so at-least-once delivery composes into effectively
exactly-once protocol state.
"""

from __future__ import annotations

from ..kernel.errors import Timeout
from ..telemetry.probes import CommsProbe
from ..telemetry.registry import current_metrics
from ..trace.tracer import current_tracer


def _message_label(make_message, built=None) -> str:
    """Trace label for an exchange: the message type name."""
    if built is not None:
        return type(built).__name__
    return getattr(make_message, "__name__", "request")


class RecoveryPolicy:
    """Timeout/retry knobs resolved from a FaultPlan, plus the
    degradation ledger the helpers count into."""

    def __init__(self, timeout: float, backoff: float, cap: float,
                 attempts: int, stats):
        if timeout <= 0 or cap < timeout or backoff < 1.0:
            raise ValueError("invalid recovery policy timings")
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.timeout = timeout
        self.backoff = backoff
        self.cap = cap
        self.attempts = attempts
        self.stats = stats
        registry = current_metrics()
        #: Retry/backoff metrics probe, or None when metering is off.
        self.meter = (CommsProbe(registry)
                      if registry is not None else None)

    @classmethod
    def from_plan(cls, plan, comm_delay: float,
                  stats) -> "RecoveryPolicy":
        return cls(timeout=plan.resolved_rpc_timeout(comm_delay),
                   backoff=plan.rpc_backoff,
                   cap=plan.resolved_rpc_cap(comm_delay),
                   attempts=plan.courier_attempts, stats=stats)

    def escalate(self, timeout: float) -> float:
        return min(timeout * self.backoff, self.cap)


class DirectComms:
    """Legacy blocking exchanges over a transaction's reply port."""

    recovery = False

    def __init__(self, site, reply, tid=None):
        self.site = site
        self.reply = reply
        self.tid = tid
        self.tracer = current_tracer()

    def request(self, dst: int, make_message, match=None, interim=None):
        """Generator: send once, return the next reply — exactly the
        historical send/receive pair (``match`` is trusted, not
        checked: with exactly-once delivery the next message *is* the
        reply)."""
        message = make_message()
        tracer = self.tracer
        if tracer is not None:
            tracer.rpc_begin(self.site.kernel.now, self.site.site_id,
                             dst, self.tid, _message_label(None, message))
        self.site.send(dst, message)
        response = yield self.reply.receive()
        if tracer is not None:
            tracer.rpc_end(self.site.kernel.now, self.site.site_id,
                           dst, self.tid, _message_label(None, message))
        return response


class ReliableComms:
    """Timeout + exponential-backoff retry exchanges."""

    recovery = True

    def __init__(self, site, reply, policy: RecoveryPolicy, tid=None):
        self.site = site
        self.reply = reply
        self.policy = policy
        self.tid = tid
        self.tracer = current_tracer()

    # ------------------------------------------------------------------
    def request(self, dst: int, make_message, match=None, interim=None):
        """Generator: at-least-once request, first matching reply wins.

        ``match(message)`` recognises the awaited reply.  ``interim``
        (optional) recognises a server acknowledgement that the real
        reply will follow unsolicited (a LockQueued): patience then
        stretches to the cap instead of re-sending at the base timeout,
        but a lost grant is still recovered by an eventual re-request.
        Unmatched messages are stale (late duplicates of an earlier
        exchange on this port) and are dropped and counted.
        """
        policy = self.policy
        stats = policy.stats
        timeout = policy.timeout
        tracer = self.tracer
        label = None
        while True:
            message = make_message()
            if tracer is not None and label is None:
                label = _message_label(None, message)
                tracer.rpc_begin(self.site.kernel.now,
                                 self.site.site_id, dst, self.tid,
                                 label)
            self.site.send(dst, message)
            patience = timeout
            try:
                while True:
                    response = yield self.reply.receive(timeout=patience)
                    if match is None or match(response):
                        if tracer is not None:
                            tracer.rpc_end(self.site.kernel.now,
                                           self.site.site_id, dst,
                                           self.tid, label)
                        return response
                    if interim is not None and interim(response):
                        patience = policy.cap
                        continue
                    stats.stale_replies += 1
                    if policy.meter is not None:
                        policy.meter.on_stale(self.site.kernel.now)
            except Timeout:
                stats.rpc_timeouts += 1
                stats.rpc_retries += 1
                if policy.meter is not None:
                    policy.meter.on_timeout(self.site.kernel.now)
                    policy.meter.on_retry(self.site.kernel.now)
                if tracer is not None:
                    tracer.msg_retry(self.site.kernel.now,
                                     self.site.site_id, dst, self.tid,
                                     label)
                timeout = policy.escalate(timeout)

    # ------------------------------------------------------------------
    def gather(self, dsts, make_message, classify):
        """Generator: one request per destination, all replies
        collected; missing destinations are re-asked after a timeout.

        ``make_message(dst)`` builds each request; ``classify(msg)``
        returns the responding destination (or None for junk).
        Returns ``{dst: reply}``.
        """
        policy = self.policy
        stats = policy.stats
        timeout = policy.timeout
        tracer = self.tracer
        label = None
        pending = list(dsts)
        got = {}
        while pending:
            for dst in pending:
                message = make_message(dst)
                if tracer is not None and label is None:
                    label = "gather:" + _message_label(None, message)
                    tracer.rpc_begin(self.site.kernel.now,
                                     self.site.site_id, -1, self.tid,
                                     label)
                self.site.send(dst, message)
            try:
                while pending:
                    response = yield self.reply.receive(timeout=timeout)
                    origin = classify(response)
                    if origin is None or origin not in pending:
                        stats.stale_replies += 1
                        if policy.meter is not None:
                            policy.meter.on_stale(self.site.kernel.now)
                        continue
                    got[origin] = response
                    pending.remove(origin)
            except Timeout:
                stats.rpc_timeouts += 1
                stats.rpc_retries += len(pending)
                if policy.meter is not None:
                    policy.meter.on_timeout(self.site.kernel.now)
                    policy.meter.on_retry(self.site.kernel.now,
                                          len(pending))
                if tracer is not None:
                    for dst in pending:
                        tracer.msg_retry(self.site.kernel.now,
                                         self.site.site_id, dst,
                                         self.tid, label)
                timeout = policy.escalate(timeout)
        if tracer is not None and label is not None:
            tracer.rpc_end(self.site.kernel.now, self.site.site_id,
                           -1, self.tid, label)
        return got


def courier(site, dst: int, build, policy: RecoveryPolicy,
            label: str, match=None):
    """Generator body: deliver one message at-least-once, then die.

    ``build(reply_address)`` constructs the message with the courier's
    private ack port woven in.  Bounded attempts: a courier must never
    outlive the run, so after ``policy.attempts`` unacknowledged sends
    it gives up (counted — the receiver may still have processed every
    copy; only the *confirmation* failed).  Spawn one per message so a
    slow destination never delays the sender.
    """
    stats = policy.stats
    reply = site.make_reply_port(label)
    timeout = policy.timeout
    tracer = current_tracer()
    try:
        for attempt in range(policy.attempts):
            if attempt:
                stats.courier_retries += 1
                if tracer is not None:
                    tracer.msg_retry(site.kernel.now, site.site_id,
                                     dst, None, label)
                if policy.meter is not None:
                    policy.meter.on_courier_retry(site.kernel.now)
            site.send(dst, build(reply.address))
            try:
                while True:
                    response = yield reply.receive(timeout=timeout)
                    if match is None or match(response):
                        return True
                    stats.stale_replies += 1
                    if policy.meter is not None:
                        policy.meter.on_stale(site.kernel.now)
            except Timeout:
                stats.rpc_timeouts += 1
                if policy.meter is not None:
                    policy.meter.on_timeout(site.kernel.now)
            timeout = policy.escalate(timeout)
        stats.courier_failures += 1
        if policy.meter is not None:
            policy.meter.on_courier_failure(site.kernel.now)
        return False
    finally:
        reply.close()
