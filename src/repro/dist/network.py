"""Network model: topology and communication delay.

The paper's distributed experiments use "three sites with fully
interconnected communication network" and sweep a uniform per-message
communication delay.  The network delivers a message into the
destination site's Message Server inbox after the link delay;
delivery order per link is FIFO (fixed delay preserves send order).

Intra-site messages bypass the network entirely (the paper:
"Inter-process communication within a site does not go through the
Message Server") — senders with a local destination should use the
service port directly; :meth:`send` nevertheless handles the
self-addressed case with zero delay for uniformity of caller code.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..kernel.kernel import Kernel
from ..telemetry.probes import NetworkProbe
from ..telemetry.registry import current_metrics
from ..trace.tracer import current_tracer
from .message import Message


class Network:
    """Fully connected mesh with per-link constant delay."""

    def __init__(self, kernel: Kernel, n_sites: int, delay: float,
                 local_delay: float = 0.0):
        if n_sites < 1:
            raise ValueError(f"need at least one site, got {n_sites}")
        if delay < 0 or local_delay < 0:
            raise ValueError("delays must be non-negative")
        self.kernel = kernel
        self.tracer = current_tracer()
        registry = current_metrics()
        #: In-flight/drop/delay probe, or None when metering is off.
        self.meter = (NetworkProbe(registry)
                      if registry is not None else None)
        self.n_sites = n_sites
        self.delay = delay
        self.local_delay = local_delay
        #: Per-link overrides: (src, dst) -> delay.
        self._link_delay: Dict[Tuple[int, int], float] = {}
        #: site -> inbox port (wired by DistributedSystem).
        self.inboxes: Dict[int, object] = {}
        #: Sites currently not operational: messages to them vanish
        #: (senders discover this through their receive timeouts — the
        #: paper's "time-out mechanism will unblock the sender").
        self._down: set = set()
        self.messages_sent = 0
        self.messages_lost = 0
        self.bytes_delay_total = 0.0
        #: Optional :class:`repro.faults.FaultInjector`; when attached,
        #: it decides each message's fate (loss, jitter, duplication,
        #: reordering, partitions) on a dedicated RNG stream.
        self.injector = None

    def set_link_delay(self, src: int, dst: int, delay: float) -> None:
        """Override the delay of one directed link (topology shaping)."""
        self._check_site(src)
        self._check_site(dst)
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self._link_delay[(src, dst)] = delay

    def link_delay(self, src: int, dst: int) -> float:
        if src == dst:
            return self.local_delay
        return self._link_delay.get((src, dst), self.delay)

    def attach_inbox(self, site: int, inbox) -> None:
        self._check_site(site)
        self.inboxes[site] = inbox

    def set_site_operational(self, site: int, operational: bool) -> None:
        """Mark a site up or down.  Messages to a down site are lost;
        a sender waiting for a reply discovers the failure through its
        receive timeout."""
        self._check_site(site)
        if operational:
            self._down.discard(site)
        else:
            self._down.add(site)

    def is_operational(self, site: int) -> bool:
        self._check_site(site)
        return site not in self._down

    def attach_injector(self, injector) -> None:
        """Route every subsequent send through a fault injector."""
        self.injector = injector

    def send(self, dst: int, message: Message) -> None:
        """Deliver ``message`` to site ``dst``'s Message Server inbox
        after the link delay from ``message.sender_site``."""
        self._check_site(dst)
        inbox = self.inboxes.get(dst)
        if inbox is None:
            raise RuntimeError(f"site {dst} has no attached inbox")
        delay = self.link_delay(message.sender_site, dst)
        self.messages_sent += 1
        if self.injector is None:
            fates = (delay,)
        else:
            fates = self.injector.route(message.sender_site, dst, delay)
        if self.tracer is not None:
            self.tracer.msg_send(self.kernel.now, message.sender_site,
                                 dst, message, copies=len(fates))
            if not fates:
                self.tracer.msg_drop(self.kernel.now, dst, message,
                                     reason="injected")
        if self.meter is not None:
            now = self.kernel.now
            for _ in fates:
                self.meter.on_send(now, message.sender_site, dst)
            if not fates:
                self.meter.on_drop(now, in_flight=False)

        def deliver(lag: float) -> None:
            # Operational state — and the delay ledger — are evaluated
            # at delivery time: a site that crashes while a message is
            # in flight still loses it, and a message that never
            # arrives accrues no delivered delay.
            if dst in self._down:
                self.messages_lost += 1
                if self.tracer is not None:
                    self.tracer.msg_drop(self.kernel.now, dst, message,
                                         reason="site-down")
                if self.meter is not None:
                    self.meter.on_drop(self.kernel.now)
            else:
                self.bytes_delay_total += lag
                if self.tracer is not None:
                    self.tracer.msg_deliver(self.kernel.now, dst,
                                            message, lag)
                if self.meter is not None:
                    self.meter.on_deliver(self.kernel.now, lag)
                inbox.send(message)

        for lag in fates:
            if lag == 0:
                deliver(lag)
            else:
                self.kernel.after(lag, lambda lag=lag: deliver(lag))

    def _check_site(self, site: int) -> None:
        if not 0 <= site < self.n_sites:
            raise ValueError(f"site {site} outside 0..{self.n_sites - 1}")
