"""Per-site Message Server.

"The distributed environment is simulated by the Message Server (MS)
listening on a well-known port for messages from remote sites. ... When
the MS retrieves a message, it ... forwards the message to the proper
servers or TM."

The MS here is a real kernel process: it blocks on the site's well-known
inbox port and forwards each message to the service port named in
``message.target``.  Services (ceiling manager, data server, replica
applier, per-transaction reply ports) register under string names in the
site's registry.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..kernel.kernel import Kernel
from ..kernel.ports import Port
from ..trace.tracer import current_tracer
from .message import Message


class ServiceRegistry:
    """Name -> port map for one site."""

    def __init__(self) -> None:
        self._services: Dict[str, Port] = {}
        self.undeliverable = 0

    def register(self, name: str, port: Port) -> None:
        if name in self._services:
            raise ValueError(f"service {name!r} already registered")
        self._services[name] = port

    def unregister(self, name: str) -> None:
        self._services.pop(name, None)

    def lookup(self, name: str) -> Optional[Port]:
        return self._services.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._services


class MessageServer:
    """The MS process plus its well-known inbox."""

    def __init__(self, kernel: Kernel, site_id: int,
                 registry: ServiceRegistry):
        self.kernel = kernel
        self.site_id = site_id
        self.registry = registry
        self.inbox = Port(kernel, name=f"ms-inbox-{site_id}")
        self.tracer = current_tracer()
        self.forwarded = 0
        self.dropped = 0
        self.process = kernel.spawn(self._loop(), f"ms-{site_id}",
                                    priority=float("inf"))

    def purge(self) -> int:
        """Crash hook: discard every queued-but-unprocessed inbox
        message (volatile memory is lost with the site).  Returns the
        number of messages discarded; they are counted as dropped."""
        discarded = len(self.inbox.drain())
        self.dropped += discarded
        return discarded

    def _loop(self):
        while True:
            message = yield self.inbox.receive()
            if not isinstance(message, Message):
                raise TypeError(f"MS {self.site_id} received non-message "
                                f"{message!r}")
            port = self.registry.lookup(message.target)
            if port is None:
                # A reply addressed to a transaction that already died
                # (e.g. a grant racing an abort): drop it, count it.
                self.dropped += 1
                self.registry.undeliverable += 1
                if self.tracer is not None:
                    self.tracer.msg_undeliverable(self.kernel.now,
                                                  self.site_id, message)
                continue
            self.forwarded += 1
            port.send(message)
