"""Typed inter-site messages.

All messages travel site-to-site through the :class:`Network` into the
destination's Message Server, which dispatches on ``target`` — the name
of a service port registered at that site ("the Message Server ...
forwards the message to the proper servers or TM").  Replies are routed
the same way: a requester registers a private reply port and names it in
``reply_to``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional, Tuple

from ..db.locks import LockMode

#: (site, service-name) address of a port registered at a site.
Address = Tuple[int, str]


@dataclasses.dataclass(frozen=True)
class Message:
    """Envelope: ``target`` names the destination service port."""

    target: str
    sender_site: int


# ----------------------------------------------------------------------
# ceiling-manager traffic (global approach)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class RegisterTxn(Message):
    """Declare a transaction active (its access sets feed the ceilings)."""
    txn: Any = None
    reply_to: Optional[Address] = None


@dataclasses.dataclass(frozen=True)
class LockRequest(Message):
    txn: Any = None
    oid: int = -1
    mode: LockMode = LockMode.READ
    reply_to: Optional[Address] = None
    #: True when the requester runs the timeout/retry protocol and
    #: wants a LockQueued acknowledgement if the lock blocks (so it can
    #: tell "request lost" apart from "ceiling-blocked").  Legacy
    #: requesters wait for the grant alone.
    queued_ack: bool = False


@dataclasses.dataclass(frozen=True)
class LockGrant(Message):
    oid: int = -1


@dataclasses.dataclass(frozen=True)
class LockQueued(Message):
    """The manager accepted the request but the lock is blocked; the
    grant will follow unsolicited.  Only sent to ``queued_ack``
    requesters."""
    oid: int = -1


@dataclasses.dataclass(frozen=True)
class ReleaseAndDeregister(Message):
    """Commit-path cleanup: release all locks and leave the active set.

    ``reply_to`` (recovery mode only) asks the manager to acknowledge,
    enabling at-least-once delivery by a cleanup courier.
    """
    txn: Any = None
    reply_to: Optional[Address] = None


@dataclasses.dataclass(frozen=True)
class AbortTxn(Message):
    """Deadline-miss cleanup: cancel waits, release locks, deregister.

    ``reply_to`` as on :class:`ReleaseAndDeregister`.
    """
    txn: Any = None
    reply_to: Optional[Address] = None


@dataclasses.dataclass(frozen=True)
class Ack(Message):
    tag: str = ""


# ----------------------------------------------------------------------
# remote data access (global approach: partitioned data)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class DataRequest(Message):
    """Perform one read/write at the object's home site on behalf of a
    transaction; the home site charges its CPU at the txn's priority."""
    txn: Any = None
    oid: int = -1
    mode: LockMode = LockMode.READ
    reply_to: Optional[Address] = None


@dataclasses.dataclass(frozen=True)
class DataReply(Message):
    oid: int = -1
    value: float = 0.0


# ----------------------------------------------------------------------
# two-phase commit (global approach)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Prepare(Message):
    txn: Any = None
    oids: Tuple[int, ...] = ()
    reply_to: Optional[Address] = None


@dataclasses.dataclass(frozen=True)
class Vote(Message):
    txn_tid: int = -1
    commit: bool = True


@dataclasses.dataclass(frozen=True)
class Decide(Message):
    txn: Any = None
    commit: bool = True
    oids: Tuple[int, ...] = ()
    reply_to: Optional[Address] = None


# ----------------------------------------------------------------------
# replica propagation (local approach)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ReplicaUpdate(Message):
    """Asynchronous post-commit update of a secondary copy (R3).

    ``origin_tid`` identifies the committing transaction (or -1 for a
    recovery resync), so appliers can deduplicate retried deliveries;
    ``reply_to`` (recovery mode only) requests an applied-ack for
    at-least-once propagation.
    """
    oid: int = -1
    value: float = 0.0
    timestamp: float = 0.0
    origin_priority: float = 0.0
    origin_tid: int = -1
    reply_to: Optional[Address] = None
