"""The global-ceiling-manager architecture (Section 4, first approach).

"The priority ceiling protocol might be implemented in a distributed
environment by using the global ceiling manager at a specific site.  In
this approach, all decisions for ceiling blocking is performed by the
global ceiling manager.  Therefore all the information for ceiling
protocol is stored at the site of the global ceiling manager."

Consequences modelled here, which the paper identifies as the approach's
weakness:

- every lock acquisition from a non-manager site costs a network round
  trip (request + grant), and ceiling blocking happens *at the manager*
  while the requester idles remotely;
- data is partitioned (no replication): accessing a remote primary costs
  a round trip plus CPU at the object's home site;
- update transactions touching remote objects commit via two-phase
  commit, and locks are "held across the network" until the commit
  completes and the release message reaches the manager.

Fault tolerance (see :mod:`repro.faults`): the servers here are
deduplicating and idempotent, so the at-least-once delivery the
:class:`~repro.dist.comms.ReliableComms` layer provides composes into
exactly-once protocol state — a retried registration re-acks, a retried
request for a held lock re-grants, a retried release/abort only
re-acknowledges.  The manager's own protocol state is modelled as
recoverable across a crash of its site (write-ahead state on stable
storage): a crash silences it while down, it does not amnesia it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..cc.base import ConcurrencyControl
from ..db.locks import LockMode
from ..db.replication import ReplicaCatalog
from ..kernel.timers import DeadlineTimer
from ..telemetry.probes import TwoPCProbe
from ..telemetry.registry import current_metrics
from ..trace.tracer import current_tracer
from ..txn.manager import CostModel
from ..txn.transaction import (DeadlineMiss, Transaction,
                               TransactionAbort)
from ..txn.two_phase_commit import TwoPhaseCommit
from .comms import DirectComms, RecoveryPolicy, ReliableComms, courier
from .message import (Ack, AbortTxn, DataReply, DataRequest, Decide,
                      LockGrant, LockQueued, LockRequest, Prepare,
                      RegisterTxn, ReleaseAndDeregister, Vote)
from .site import Site

CEILING_SERVICE = "ceiling"
DATA_SERVICE = "data"
COMMIT_SERVICE = "commit"


# ----------------------------------------------------------------------
# server processes
# ----------------------------------------------------------------------
def ceiling_manager(site: Site, cc: ConcurrencyControl, stats=None):
    """Generator body: a lock-manager server loop.

    Historically the *global* ceiling manager; under the registry's
    placement hooks the same loop also serves DPCP's resource-local
    agents (one per site, each wrapping its own protocol instance).
    ``cc`` is any protocol supporting the async acquire path.

    Keeps a registry of active transactions and of queued lock
    requests so retried messages (at-least-once delivery under a fault
    plan) are absorbed without double-registering, double-granting or
    double-releasing.  Fault-free runs take the identical code path —
    the dedup branches are only reachable when messages repeat.
    """
    port = site.register_service(CEILING_SERVICE)
    registered: Dict[int, Transaction] = {}
    completed: Set[int] = set()
    queued: Set[Tuple[int, int]] = set()

    def ack(reply_to, tag: str) -> None:
        if reply_to is None:
            return
        reply_site, reply_name = reply_to
        site.send(reply_site, Ack(target=reply_name,
                                  sender_site=site.site_id, tag=tag))

    while True:
        message = yield port.receive()
        if isinstance(message, RegisterTxn):
            txn = message.txn
            if txn.tid in registered or txn.tid in completed:
                # Duplicate registration (possibly a late copy arriving
                # after the transaction already finished): re-ack only.
                if stats is not None:
                    stats.duplicates_suppressed += 1
            else:
                cc.register(txn)
                registered[txn.tid] = txn
            ack(message.reply_to, "registered")
        elif isinstance(message, LockRequest):
            txn = message.txn
            reply_site, reply_name = message.reply_to
            if message.queued_ack:
                # Recovery-mode requester: absorb retransmissions.
                if txn.tid in completed:
                    # The transaction already released/aborted; this is
                    # a ghost of a completed exchange.
                    if stats is not None:
                        stats.duplicates_suppressed += 1
                    continue
                held = cc.locks.mode_held(message.oid, txn)
                if held is not None and (held is LockMode.WRITE
                                         or message.mode
                                         is LockMode.READ):
                    # Already granted (the grant was lost): re-grant.
                    site.send(reply_site,
                              LockGrant(target=reply_name,
                                        sender_site=site.site_id,
                                        oid=message.oid))
                    if stats is not None:
                        stats.duplicates_suppressed += 1
                    continue
                if (txn.tid, message.oid) in queued:
                    # Still ceiling-blocked: re-acknowledge the queue.
                    site.send(reply_site,
                              LockQueued(target=reply_name,
                                         sender_site=site.site_id,
                                         oid=message.oid))
                    if stats is not None:
                        stats.duplicates_suppressed += 1
                    continue

            def make_grant(reply_site=reply_site, reply_name=reply_name,
                           oid=message.oid, tid=txn.tid):
                def deliver():
                    queued.discard((tid, oid))
                    site.send(reply_site,
                              LockGrant(target=reply_name,
                                        sender_site=site.site_id,
                                        oid=oid))
                return deliver

            granted = cc.acquire_async(txn, message.oid, message.mode,
                                       on_grant=make_grant(),
                                       process=txn.process)
            if granted:
                make_grant()()
            else:
                queued.add((txn.tid, message.oid))
                if message.queued_ack:
                    site.send(reply_site,
                              LockQueued(target=reply_name,
                                         sender_site=site.site_id,
                                         oid=message.oid))
        elif isinstance(message, ReleaseAndDeregister):
            txn = message.txn
            if txn.tid in completed:
                # A retry of an already-processed release: re-ack only.
                if stats is not None:
                    stats.duplicates_suppressed += 1
            else:
                cc.release_all(txn)
                # The protocol-level commit point: under the global
                # approach locks are held across the network until this
                # message, so strict-2PL accounting closes here, not at
                # mark_committed.
                if cc.sanitizer is not None:
                    cc.sanitizer.on_commit(txn)
                cc.deregister(txn)
                registered.pop(txn.tid, None)
                completed.add(txn.tid)
            ack(message.reply_to, f"released-{txn.tid}")
        elif isinstance(message, AbortTxn):
            txn = message.txn
            if txn.tid in completed:
                if stats is not None:
                    stats.duplicates_suppressed += 1
            else:
                cc.cancel_async(txn)
                cc.abort(txn)
                cc.deregister(txn)
                registered.pop(txn.tid, None)
                completed.add(txn.tid)
                queued.difference_update(
                    {entry for entry in queued if entry[0] == txn.tid})
            ack(message.reply_to, f"aborted-{txn.tid}")
        else:
            raise TypeError(f"ceiling manager got {message!r}")


def data_server(site: Site, costs: CostModel):
    """Generator body: serves remote reads/writes on local primaries.

    Each request is handled by a short-lived helper process running at
    the *requesting transaction's priority*, so remote accesses compete
    for this site's CPU exactly like local work would.  Helpers are
    site-resident: a crash aborts them mid-service (the requester's
    retry re-asks after recovery).
    """
    port = site.register_service(DATA_SERVICE)
    while True:
        message = yield port.receive()
        if not isinstance(message, DataRequest):
            raise TypeError(f"data server got {message!r}")
        helper = site.kernel.spawn(
            _serve_data(site, message, costs),
            f"data-{site.site_id}-txn{message.txn.tid}-{message.oid}",
            priority=message.txn.priority)
        site.adopt(helper)


def _serve_data(site: Site, message: DataRequest, costs: CostModel):
    yield site.cpu.use(costs.cpu_per_object)
    data_object = site.database.object(message.oid)
    if message.mode is LockMode.WRITE:
        # Workspace write: the durable install happens at 2PC decide.
        value = float(message.txn.tid)
    else:
        value = data_object.read()
    reply_site, reply_name = message.reply_to
    site.send(reply_site, DataReply(target=reply_name,
                                    sender_site=site.site_id,
                                    oid=message.oid, value=value))


def commit_server(site: Site, costs: CostModel):
    """Generator body: 2PC participant for this site's partition.

    A repeated Decide (retried by the coordinator because the ack was
    lost) re-acknowledges without re-installing.
    """
    port = site.register_service(COMMIT_SERVICE)
    decided: Set[int] = set()
    while True:
        message = yield port.receive()
        if isinstance(message, Prepare):
            if costs.commit_cpu > 0:
                yield site.cpu.use(costs.commit_cpu)
            reply_site, reply_name = message.reply_to
            site.send(reply_site, Vote(target=reply_name,
                                       sender_site=site.site_id,
                                       txn_tid=message.txn.tid,
                                       commit=True))
        elif isinstance(message, Decide):
            if message.commit and message.txn.tid not in decided:
                now = site.kernel.now
                for oid in message.oids:
                    site.database.object(oid).write(
                        float(message.txn.tid), now)
            decided.add(message.txn.tid)
            reply_site, reply_name = message.reply_to
            site.send(reply_site, Ack(target=reply_name,
                                      sender_site=site.site_id,
                                      tag=f"decided-{message.txn.tid}"))
        else:
            raise TypeError(f"commit server got {message!r}")


# ----------------------------------------------------------------------
# the transaction manager (global mode)
# ----------------------------------------------------------------------
def global_transaction_manager(sites: List[Site], gcm_site: int,
                               catalog: ReplicaCatalog, txn: Transaction,
                               costs: CostModel,
                               on_done: Callable[[Transaction], None],
                               policy: Optional[RecoveryPolicy] = None,
                               router: Optional[Callable[[int], int]]
                               = None):
    """Generator body for a transaction under the global approach.

    Without a recovery ``policy`` every exchange is the historical
    blocking send/receive (bit-identical to the pre-fault code).  With
    one, every RPC times out and retries (the deadline timer bounds the
    total), and commit-path cleanup is handed to bounded-attempt
    couriers so the manager always learns the outcome.

    ``router`` is the registry spec's per-oid lock routing (DPCP:
    each lock request goes to the resource's own agent site, and the
    transaction registers/releases at every agent it touches).  With
    ``router=None`` all lock traffic goes to ``gcm_site`` on the
    bit-identical single-manager path.
    """
    site = sites[txn.site]
    kernel = site.kernel
    if router is None:
        manager_sites = [gcm_site]
    else:
        manager_sites = sorted({router(oid)
                                for oid, __ in txn.operations})
    txn.mark_started(kernel.now)
    tracer = current_tracer()
    if tracer is not None:
        tracer.txn_start(kernel.now, txn)
    probe = kernel.txn_telemetry
    if probe is not None:
        probe.on_start(kernel.now)
    registry = current_metrics()
    # Instruments are get-or-create by name, so per-transaction probe
    # construction shares the same registry series.
    tpc_probe = TwoPCProbe(registry) if registry is not None else None
    timer = DeadlineTimer(kernel, txn.process, txn.deadline,
                          lambda: DeadlineMiss(txn.tid))
    reply = site.make_reply_port(f"txn{txn.tid}")
    if policy is None:
        comms = DirectComms(site, reply, tid=txn.tid)
    else:
        comms = ReliableComms(site, reply, policy, tid=txn.tid)
    prepared: List[int] = []
    by_site: Dict[int, List[int]] = {}
    decided_commit = False
    try:
        # Registration round trip(s): every manager whose resources
        # this transaction touches must know its access sets before
        # any ceiling decision (single-manager protocols: just the
        # global manager).
        for manager in manager_sites:
            yield from comms.request(
                manager,
                lambda: RegisterTxn(target=CEILING_SERVICE,
                                    sender_site=site.site_id,
                                    txn=txn, reply_to=reply.address),
                match=lambda m, manager=manager: (
                    isinstance(m, Ack) and m.tag == "registered"
                    and m.sender_site == manager))

        for oid, mode in txn.operations:
            blocked_at = kernel.now
            if probe is not None:
                probe.on_block(blocked_at)
            yield from comms.request(
                gcm_site if router is None else router(oid),
                lambda oid=oid, mode=mode: LockRequest(
                    target=CEILING_SERVICE, sender_site=site.site_id,
                    txn=txn, oid=oid, mode=mode,
                    reply_to=reply.address,
                    queued_ack=comms.recovery),
                match=lambda m, oid=oid: (isinstance(m, LockGrant)
                                          and m.oid == oid),
                interim=lambda m, oid=oid: (isinstance(m, LockQueued)
                                            and m.oid == oid))
            if probe is not None:
                probe.on_unblock(kernel.now, kernel.now - blocked_at)
            txn.blocked_time += kernel.now - blocked_at
            home = catalog.primary_site(oid)
            if home == txn.site:
                yield site.cpu.use(costs.cpu_per_object)
                data_object = site.database.object(oid)
                if mode is LockMode.WRITE:
                    data_object.write(float(txn.tid), kernel.now)
                else:
                    data_object.read()
            else:
                yield from comms.request(
                    home,
                    lambda oid=oid, mode=mode, home=home: DataRequest(
                        target=DATA_SERVICE, sender_site=site.site_id,
                        txn=txn, oid=oid, mode=mode,
                        reply_to=reply.address),
                    match=lambda m, oid=oid: (isinstance(m, DataReply)
                                              and m.oid == oid))

        # Two-phase commit across the sites holding written primaries.
        participants = sorted({catalog.primary_site(oid)
                               for oid in txn.write_set
                               if catalog.primary_site(oid) != txn.site})
        if participants:
            by_site = {p: [] for p in participants}
            for oid in txn.write_set:
                home = catalog.primary_site(oid)
                if home != txn.site:
                    by_site[home].append(oid)
            if not comms.recovery:
                prepare_at = kernel.now
                if tracer is not None:
                    tracer.two_pc(kernel.now, txn, "prepare",
                                  participants)
                for participant in participants:
                    site.send(participant,
                              Prepare(target=COMMIT_SERVICE,
                                      sender_site=site.site_id, txn=txn,
                                      oids=tuple(by_site[participant]),
                                      reply_to=reply.address))
                for __ in participants:
                    yield reply.receive()  # Vote (all yes in this model)
                prepared = list(participants)
                decided_commit = True
                decide_at = kernel.now
                if tracer is not None:
                    tracer.two_pc(kernel.now, txn, "decide",
                                  participants, commit=True)
                if tpc_probe is not None:
                    tpc_probe.on_phase(decide_at, "prepare",
                                       decide_at - prepare_at)
                for participant in participants:
                    site.send(participant,
                              Decide(target=COMMIT_SERVICE,
                                     sender_site=site.site_id, txn=txn,
                                     commit=True,
                                     oids=tuple(by_site[participant]),
                                     reply_to=reply.address))
                for __ in participants:
                    yield reply.receive()  # Ack
                prepared = []
                if tracer is not None:
                    tracer.two_pc(kernel.now, txn, "done", participants)
                if tpc_probe is not None:
                    tpc_probe.on_phase(kernel.now, "decide",
                                       kernel.now - decide_at)
            else:
                tpc = TwoPhaseCommit(txn.tid, participants)
                tpc.start()
                prepare_at = kernel.now
                if tracer is not None:
                    tracer.two_pc(kernel.now, txn, "prepare",
                                  participants)
                votes = yield from comms.gather(
                    participants,
                    lambda dst: Prepare(target=COMMIT_SERVICE,
                                        sender_site=site.site_id,
                                        txn=txn,
                                        oids=tuple(by_site[dst]),
                                        reply_to=reply.address),
                    classify=lambda m: (m.sender_site
                                        if isinstance(m, Vote)
                                        and m.txn_tid == txn.tid
                                        else None))
                for participant in participants:
                    tpc.record_vote(participant,
                                    votes[participant].commit)
                prepared = list(participants)
                decided_commit = tpc.decision_commit
                decide_at = kernel.now
                if tracer is not None:
                    tracer.two_pc(kernel.now, txn, "decide",
                                  participants, commit=decided_commit)
                if tpc_probe is not None:
                    tpc_probe.on_phase(decide_at, "prepare",
                                       decide_at - prepare_at)
                yield from comms.gather(
                    participants,
                    lambda dst: Decide(target=COMMIT_SERVICE,
                                       sender_site=site.site_id,
                                       txn=txn, commit=decided_commit,
                                       oids=tuple(by_site[dst]),
                                       reply_to=reply.address),
                    classify=lambda m: (m.sender_site
                                        if isinstance(m, Ack)
                                        and m.tag == f"decided-{txn.tid}"
                                        else None))
                for participant in participants:
                    tpc.record_ack(participant)
                prepared = []
                if tracer is not None:
                    tracer.two_pc(kernel.now, txn, "done", participants)
                if tpc_probe is not None:
                    tpc_probe.on_phase(kernel.now, "decide",
                                       kernel.now - decide_at)
        if costs.commit_cpu > 0:
            yield site.cpu.use(costs.commit_cpu)
        for manager in manager_sites:
            if comms.recovery:
                _spawn_release_courier(site, manager, txn, policy)
            else:
                site.send(manager,
                          ReleaseAndDeregister(target=CEILING_SERVICE,
                                               sender_site=site.site_id,
                                               txn=txn))
        txn.mark_committed(kernel.now)
        if tracer is not None:
            tracer.txn_commit(kernel.now, txn)
        if probe is not None:
            probe.on_commit(kernel.now)
    except TransactionAbort:
        # Resolve any in-doubt participants, then free the locks.  If
        # the decision was already commit when the abort struck (a lost
        # Decide-ack), participants must still learn *commit* — the
        # transaction scores as missed, but 2PC atomicity holds.
        if comms.recovery:
            for participant in prepared:
                _spawn_decide_courier(site, participant, txn,
                                      decided_commit,
                                      tuple(by_site.get(participant,
                                                        ())),
                                      policy)
            for manager in manager_sites:
                _spawn_abort_courier(site, manager, txn, policy)
        else:
            for participant in prepared:
                site.send(participant,
                          Decide(target=COMMIT_SERVICE,
                                 sender_site=site.site_id, txn=txn,
                                 commit=False, oids=(),
                                 reply_to=reply.address))
            for manager in manager_sites:
                site.send(manager, AbortTxn(target=CEILING_SERVICE,
                                            sender_site=site.site_id,
                                            txn=txn))
        txn.mark_missed(kernel.now)
        if tracer is not None:
            tracer.txn_miss(kernel.now, txn, reason="deadline")
        if probe is not None:
            probe.on_renege(kernel.now)
    finally:
        timer.cancel()
        reply.close()
        on_done(txn)


# ----------------------------------------------------------------------
# cleanup couriers (recovery mode)
# ----------------------------------------------------------------------
def _spawn_release_courier(site: Site, manager: int, txn: Transaction,
                           policy: RecoveryPolicy) -> None:
    tag = f"released-{txn.tid}"
    body = courier(
        site, manager,
        lambda addr: ReleaseAndDeregister(
            target=CEILING_SERVICE, sender_site=site.site_id,
            txn=txn, reply_to=addr),
        policy, f"release-{txn.tid}-{manager}",
        match=lambda m: (isinstance(m, Ack) and m.tag == tag
                         and m.sender_site == manager))
    site.adopt(site.kernel.spawn(
        body, f"release-courier-{txn.tid}-{manager}",
        priority=float("inf")))


def _spawn_abort_courier(site: Site, manager: int, txn: Transaction,
                         policy: RecoveryPolicy) -> None:
    tag = f"aborted-{txn.tid}"
    body = courier(
        site, manager,
        lambda addr: AbortTxn(target=CEILING_SERVICE,
                              sender_site=site.site_id, txn=txn,
                              reply_to=addr),
        policy, f"abort-{txn.tid}-{manager}",
        match=lambda m: (isinstance(m, Ack) and m.tag == tag
                         and m.sender_site == manager))
    site.adopt(site.kernel.spawn(
        body, f"abort-courier-{txn.tid}-{manager}",
        priority=float("inf")))


def _spawn_decide_courier(site: Site, participant: int,
                          txn: Transaction, commit: bool,
                          oids: tuple,
                          policy: RecoveryPolicy) -> None:
    tag = f"decided-{txn.tid}"
    body = courier(
        site, participant,
        lambda addr: Decide(target=COMMIT_SERVICE,
                            sender_site=site.site_id, txn=txn,
                            commit=commit, oids=oids, reply_to=addr),
        policy, f"decide-{txn.tid}-{participant}",
        match=lambda m: isinstance(m, Ack) and m.tag == tag)
    site.adopt(site.kernel.spawn(
        body, f"decide-courier-{txn.tid}-{participant}",
        priority=float("inf")))
