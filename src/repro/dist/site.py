"""A virtual site: CPU, local database, services, Message Server.

"An instance of the prototyping environment can manage any number of
virtual sites specified by the user."  Each site owns:

- a preemptive-priority CPU (the distributed experiments are
  memory-resident, so there is no I/O device);
- a full copy of the database (used as primaries + secondaries in the
  local-ceiling mode; only the primary partition is touched in the
  global mode);
- a service registry + Message Server for inter-site traffic;
- optionally a *local* ceiling manager (local mode), or data/commit
  servers (global mode) — wired up by the architecture modules.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..db.objects import Database
from ..kernel.kernel import Kernel
from ..kernel.ports import Port
from ..resources.cpu import CPU
from .message_server import MessageServer, ServiceRegistry
from .network import Network

_reply_counter = itertools.count(1)


class Site:
    """One node of the distributed system."""

    def __init__(self, kernel: Kernel, site_id: int, db_size: int,
                 network: Network):
        self.kernel = kernel
        self.site_id = site_id
        self.network = network
        self.cpu = CPU(kernel, name=f"cpu-{site_id}", policy="priority")
        self.database = Database(db_size, site_id=site_id)
        self.registry = ServiceRegistry()
        self.message_server = MessageServer(kernel, site_id, self.registry)
        network.attach_inbox(site_id, self.message_server.inbox)
        #: Set by the architecture module (local mode): the site's
        #: PriorityCeiling instance.
        self.ceiling = None
        #: Local-mode telemetry: commit-to-visible latency of every
        #: replica update applied at this site (time units).
        self.replica_apply_latencies = []
        #: Kernel processes whose lifetime is bound to this site's
        #: volatile transaction-processing state (in-flight TMs,
        #: replica-applier transactions, data-server helpers, cleanup
        #: couriers).  A crash interrupts them all; infrastructure
        #: server loops are *not* resident — they are modelled as
        #: recovering from stable state when the site comes back.
        self.resident = []
        #: Replica-update dedup memory: (origin site, origin tid, oid,
        #: version ts) of every update already applied here.  Kept on
        #: "stable storage" (survives crashes), like the copies it
        #: guards.
        self.applied_updates = set()
        #: Updates currently being applied (volatile — a crash clears
        #: it along with the applier transactions it tracks).  Guards
        #: against a courier retry spawning a second applier for an
        #: update whose first applier is still waiting on the lock.
        self.pending_updates = set()

    # ------------------------------------------------------------------
    # service plumbing
    # ------------------------------------------------------------------
    def register_service(self, name: str, port: Optional[Port] = None
                         ) -> Port:
        """Register (creating if needed) a service port under ``name``."""
        if port is None:
            port = Port(self.kernel, name=f"{name}@{self.site_id}")
        self.registry.register(name, port)
        return port

    def unregister_service(self, name: str) -> None:
        self.registry.unregister(name)

    def make_reply_port(self, label: str) -> "ReplyPort":
        """A uniquely named private port for request/reply exchanges."""
        name = f"reply-{label}-{next(_reply_counter)}"
        port = self.register_service(name)
        return ReplyPort(self, name, port)

    # ------------------------------------------------------------------
    # crash / recovery (fail-stop model; see DESIGN.md)
    # ------------------------------------------------------------------
    def adopt(self, process) -> None:
        """Bind ``process``'s lifetime to this site's volatile state."""
        self.resident.append(process)

    def crash(self, exc_factory):
        """Fail-stop: interrupt every resident process with
        ``exc_factory()`` and purge the Message Server inbox.  Returns
        ``(killed, purged)`` — processes actually interrupted and inbox
        messages discarded.  The network must separately be told the
        site is down."""
        residents, self.resident = self.resident, []
        self.pending_updates.clear()
        killed = 0
        for process in residents:
            if self.kernel.interrupt(process, exc_factory()):
                killed += 1
        purged = self.message_server.purge()
        return killed, purged

    def recover(self) -> None:
        """Restart after a crash: rebuild ceiling state.

        The kill paths release a victim's locks through the protocol's
        own abort, so this is a defensive sweep: any lock still held by
        a terminated owner (a kill path that never got to run) is
        force-released so the rebuilt ceiling state cannot embalm a
        dead transaction.
        """
        if self.ceiling is None:
            return
        cc = self.ceiling
        for owner in list(cc.locks.owners()):
            process = getattr(owner, "process", None)
            if process is not None and process.terminated:
                cc.abort(owner)
                cc.deregister(owner)

    def send(self, dst_site: int, message) -> None:
        """Route a message: local targets go straight to the service
        port (intra-site IPC bypasses the Message Server); remote
        targets go through the network."""
        if dst_site == self.site_id:
            port = self.registry.lookup(message.target)
            if port is None:
                self.registry.undeliverable += 1
                return
            port.send(message)
        else:
            self.network.send(dst_site, message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Site(id={self.site_id})"


class ReplyPort:
    """A private, auto-unregistering reply port."""

    def __init__(self, site: Site, name: str, port: Port):
        self.site = site
        self.name = name
        self.port = port

    @property
    def address(self):
        """(site, service-name) to put in a message's ``reply_to``."""
        return (self.site.site_id, self.name)

    def receive(self, timeout: Optional[float] = None):
        return self.port.receive(timeout=timeout)

    def close(self) -> None:
        """Unregister; late replies are dropped (and counted) by the MS."""
        self.site.unregister_service(self.name)
