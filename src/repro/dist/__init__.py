"""Distributed environment: sites, network, message servers, and the
global-ceiling vs local-ceiling architectures of Section 4."""

from .global_ceiling import (ceiling_manager, commit_server, data_server,
                             global_transaction_manager)
from .local_ceiling import local_transaction_manager, replica_applier
from .message import (Ack, AbortTxn, DataReply, DataRequest, Decide,
                      LockGrant, LockRequest, Message, Prepare,
                      RegisterTxn, ReleaseAndDeregister, ReplicaUpdate,
                      Vote)
from .message_server import MessageServer, ServiceRegistry
from .network import Network
from .site import ReplyPort, Site
from .snapshot import SnapshotReader, snapshot_read_transaction
from .system import DistributedSystem

__all__ = [
    "AbortTxn",
    "Ack",
    "DataReply",
    "DataRequest",
    "Decide",
    "DistributedSystem",
    "LockGrant",
    "LockRequest",
    "Message",
    "MessageServer",
    "Network",
    "Prepare",
    "RegisterTxn",
    "ReleaseAndDeregister",
    "ReplicaUpdate",
    "ReplyPort",
    "ServiceRegistry",
    "Site",
    "SnapshotReader",
    "Vote",
    "ceiling_manager",
    "commit_server",
    "data_server",
    "global_transaction_manager",
    "local_transaction_manager",
    "replica_applier",
    "snapshot_read_transaction",
]
