"""Distributed system assembly: sites + network + architecture wiring.

Builds the §4 test system from a :class:`DistributedConfig`: N fully
interconnected sites, each with its own CPU and a full database copy, a
Message Server, and either

- **global mode** — lock managers behind ceiling-manager server loops,
  placed by the protocol's registry spec: one manager at ``gcm_site``
  for single-manager protocols (the paper's global ceiling manager),
  or one resource-local agent per site under DPCP, with lock requests
  routed to each object's primary site; data and commit servers at
  every site; transactions run the global TM (lock round trips, remote
  data access, 2PC);
- **local mode** — one protocol instance per site (built from the
  registry spec); replica appliers at every site; transactions run the
  local TM (local locks, local commit, asynchronous replica fan-out).

With a :class:`~repro.faults.FaultPlan` on the config, the network
routes every message through a :class:`~repro.faults.FaultInjector`,
crash/recovery intervals are armed as kernel events, and (when the plan
implies lost state) the TMs switch to the
:class:`~repro.dist.comms.ReliableComms` timeout/retry transport.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.config import DistributedConfig
from ..core.monitor import PerformanceMonitor
from ..db.replication import ReplicaCatalog
from ..db.versions import MultiVersionStore
from ..faults import FaultInjector
from ..kernel.turbo import make_kernel
from ..protocols import REGISTRY
from ..trace.tracer import current_tracer
from ..txn.generator import TransactionSpec, WorkloadGenerator
from ..txn.priority import PriorityAssigner, proportional_deadline
from ..txn.transaction import (SiteFailure, Transaction,
                               TransactionStatus)
from .comms import RecoveryPolicy
from .global_ceiling import (ceiling_manager, commit_server, data_server,
                             global_transaction_manager)
from .local_ceiling import (local_transaction_manager, replica_applier,
                            spawn_update_courier)
from .network import Network
from .site import Site
from .snapshot import SnapshotReader, snapshot_read_transaction


class DistributedSystem:
    """A wired N-site instance ready to run one experiment."""

    def __init__(self, config: DistributedConfig,
                 schedule: Optional[List[TransactionSpec]] = None):
        config.validate()
        self.config = config
        self.tracer = current_tracer()
        self.kernel = make_kernel(config.seed, engine=config.engine)
        self.network = Network(self.kernel, config.n_sites,
                               config.comm_delay)
        self.catalog = ReplicaCatalog(config.db_size, config.n_sites)
        self.sites: List[Site] = [
            Site(self.kernel, site_id, config.db_size, self.network)
            for site_id in range(config.n_sites)
        ]
        self.monitor = PerformanceMonitor()
        self.degradation = self.monitor.degradation
        self.assigner = PriorityAssigner(config.timing.priority_policy)
        self._active = 0
        self._inflight: Dict[int, Transaction] = {}
        self.versions: Optional[List[MultiVersionStore]] = None
        self.snapshot_reader: Optional[SnapshotReader] = None
        if config.temporal_versions:
            self.versions = [MultiVersionStore()
                             for __ in range(config.n_sites)]
        if config.snapshot_reads:
            self.snapshot_reader = SnapshotReader(
                self.sites, self.versions, config.comm_delay)

        # -- fault plan wiring ------------------------------------------
        plan = config.faults
        self.injector: Optional[FaultInjector] = None
        self.policy: Optional[RecoveryPolicy] = None
        if plan is not None and plan.active:
            self.degradation.enabled = True
            self.injector = FaultInjector(self.kernel, plan,
                                          config.n_sites,
                                          self.degradation)
            self.network.attach_injector(self.injector)
            self.injector.schedule_crashes(self.crash_site,
                                           self.recover_site)
        if plan is not None and plan.needs_recovery:
            self.policy = RecoveryPolicy.from_plan(
                plan, config.comm_delay, self.degradation)

        spec = REGISTRY.resolve(config.protocol)
        self.spec = spec
        self.lock_router = None
        #: Global-mode lock managers by site (one entry at ``gcm_site``
        #: for single-manager protocols; one per site under DPCP's
        #: resource-local placement).  Empty in local mode.
        self.global_ccs: Dict[int, object] = {}
        if config.mode == "global":
            self.lock_router = spec.lock_router(self.catalog,
                                                config.gcm_site)
            for manager_id in spec.manager_sites(config.n_sites,
                                                 config.gcm_site):
                cc = spec.build(self.kernel, config.protocol_options)
                self.global_ccs[manager_id] = cc
                self.kernel.spawn(
                    ceiling_manager(self.sites[manager_id], cc,
                                    stats=self.degradation),
                    f"gcm-{manager_id}", priority=float("inf"))
            self.global_cc = self.global_ccs.get(config.gcm_site)
            for site in self.sites:
                self.kernel.spawn(data_server(site, config.costs),
                                  f"data-server-{site.site_id}",
                                  priority=float("inf"))
                self.kernel.spawn(commit_server(site, config.costs),
                                  f"commit-server-{site.site_id}",
                                  priority=float("inf"))
        else:
            self.global_cc = None
            for site in self.sites:
                site.ceiling = spec.build(self.kernel,
                                          config.protocol_options)
                versions = (self.versions[site.site_id]
                            if self.versions is not None else None)
                self.kernel.spawn(
                    replica_applier(site, self.catalog, config.costs,
                                    versions, stats=self.degradation),
                    f"replica-applier-{site.site_id}",
                    priority=float("inf"))

        if schedule is None:
            workload = config.workload
            generator = WorkloadGenerator(
                self.kernel.rng, config.db_size,
                workload.mean_interarrival, workload.transaction_size,
                workload.n_transactions,
                read_only_fraction=workload.read_only_fraction,
                write_fraction=workload.write_fraction,
                size_jitter=workload.size_jitter,
                n_sites=config.n_sites, catalog=self.catalog)
            schedule = generator.generate()
        self.schedule = schedule
        for spec in schedule:
            self.kernel.at(spec.arrival,
                           lambda spec=spec: self._admit(spec))

    # ------------------------------------------------------------------
    def _admit(self, spec: TransactionSpec) -> None:
        now = self.kernel.now
        deadline = proportional_deadline(
            now, spec.size, self.config.costs.per_object_time,
            self.config.timing.slack_factor,
            load=self._active,
            load_factor=self.config.timing.load_factor)
        priority = self.assigner.priority(now, deadline)
        txn = Transaction(spec.operations, now, deadline, priority,
                          site=spec.site, txn_type=spec.txn_type,
                          periodic=spec.periodic)
        if not self.network.is_operational(spec.site):
            # A crashed site accepts no work: the arrival is refused and
            # scored as missed (the hard-deadline policy — it can never
            # finish in time on a dead site).
            txn.mark_missed(now)
            self.degradation.rejected_at_down_site += 1
            self.monitor.record(txn)
            if self.tracer is not None:
                self.tracer.txn_miss(now, txn, reason="site-down")
            return
        self._active += 1
        if self.config.mode == "global":
            body = global_transaction_manager(
                self.sites, self.config.gcm_site, self.catalog, txn,
                self.config.costs, self._on_done, policy=self.policy,
                router=self.lock_router)
        elif (self.snapshot_reader is not None
              and not txn.write_set):
            # §4 mechanism: read-only transactions served lock-free
            # from the local multiversion store.
            body = snapshot_read_transaction(
                self.sites[txn.site], self.snapshot_reader, txn,
                self.config.costs.cpu_per_object, self._on_done)
        else:
            body = local_transaction_manager(
                self.sites, self.catalog, txn, self.config.costs,
                self._on_done, versions=self.versions,
                policy=self.policy)
        txn.process = self.kernel.spawn(body, f"tm-{txn.tid}",
                                        priority=txn.priority)
        txn.process.payload = txn
        self._inflight[txn.tid] = txn
        self.sites[txn.site].adopt(txn.process)

    def _on_done(self, txn: Transaction) -> None:
        self._active -= 1
        self._inflight.pop(txn.tid, None)
        self.monitor.record(txn)

    # ------------------------------------------------------------------
    # crash / recovery (driven by the injector's scheduled intervals)
    # ------------------------------------------------------------------
    def crash_site(self, site_id: int) -> None:
        """Fail-stop crash: the site drops off the network, every
        resident process (in-flight TMs, appliers, helpers, couriers)
        is aborted with :class:`SiteFailure`, and the Message Server's
        queued inbox is purged.  Infrastructure server loops and the
        ceiling manager's protocol state are modelled as recoverable
        from stable storage — the crash silences them, it does not
        amnesia them."""
        now = self.kernel.now
        site = self.sites[site_id]
        victims = [txn for txn in self._inflight.values()
                   if txn.site == site_id]
        self.network.set_site_operational(site_id, False)
        self.degradation.mark_down(site_id, now)
        self.degradation.killed_by_crash += len(victims)
        killed, purged = site.crash(lambda: SiteFailure(site_id))
        del killed  # residents include non-txn helpers; victims counted
        self.degradation.purged_messages += purged
        if self.tracer is not None:
            self.tracer.site_crash(now, site_id, victims=len(victims))

    def recover_site(self, site_id: int) -> None:
        """Bring a crashed site back: rejoin the network, sweep any
        lock state orphaned by the crash, finalize transactions whose
        interrupt outran their manager body, and (local mode) run
        anti-entropy so secondary copies stranded by the outage catch
        up."""
        now = self.kernel.now
        self.network.set_site_operational(site_id, True)
        self.sites[site_id].recover()
        self.degradation.mark_up(site_id, now)
        if self.tracer is not None:
            self.tracer.site_recover(now, site_id)
        self._finalize_orphans()
        if self.config.mode == "local":
            self._resync_replicas(site_id)

    def _finalize_orphans(self) -> None:
        """Score transactions killed before their manager ever ran.

        A process interrupted before its first step terminates without
        executing its body — no ``except``/``finally`` fires, so the
        usual ``_on_done`` path never runs.  Sweep those here."""
        for txn in list(self._inflight.values()):
            process = txn.process
            if (process is not None and process.terminated
                    and txn.status in (TransactionStatus.PENDING,
                                       TransactionStatus.RUNNING)):
                txn.mark_missed(self.kernel.now)
                self._on_done(txn)
                if self.tracer is not None:
                    self.tracer.txn_miss(self.kernel.now, txn,
                                         reason="orphaned")

    def _resync_replicas(self, site_id: int) -> None:
        """Anti-entropy after recovery (local mode): re-propagate every
        update the crash window swallowed — pull (the recovered site's
        secondaries may be stale) and push (other sites may have missed
        updates from this site's primaries while its couriers were
        dead)."""
        for dst, oid, primary, primary_ts in (
                self.catalog.stale_copies(involving=site_id)):
            origin = self.sites[primary]
            value = origin.database.object(oid).value
            self.degradation.resync_updates += 1
            if self.policy is not None:
                spawn_update_courier(origin, dst, oid, value,
                                     primary_ts, -float("inf"),
                                     -1, self.policy)
            else:  # pragma: no cover - crashes imply a recovery policy
                from .local_ceiling import REPLICA_SERVICE
                from .message import ReplicaUpdate
                origin.send(dst, ReplicaUpdate(
                    target=REPLICA_SERVICE, sender_site=primary,
                    oid=oid, value=value, timestamp=primary_ts,
                    origin_priority=-float("inf"), origin_tid=-1))

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> PerformanceMonitor:
        self.kernel.run(until=until)
        self._finalize_orphans()
        return self.monitor

    def summary(self) -> dict:
        row = self.monitor.summary()
        row["messages_sent"] = self.network.messages_sent
        lost = self.network.messages_lost
        if self.degradation.enabled:
            lost += (self.degradation.messages_dropped
                     + self.degradation.partition_drops)
        row["messages_lost"] = lost
        row["undeliverable"] = sum(site.registry.undeliverable
                                   for site in self.sites)
        row["ms_dropped"] = sum(site.message_server.dropped
                                for site in self.sites)
        if self.config.mode == "global":
            stats = {}
            for manager_id in sorted(self.global_ccs):
                manager_stats = self.global_ccs[manager_id].stats
                for key, value in manager_stats.as_dict().items():
                    stats[key] = stats.get(key, 0) + value
        else:
            stats = {}
            for site in self.sites:
                for key, value in site.ceiling.stats.as_dict().items():
                    stats[key] = stats.get(key, 0) + value
        row.update({f"cc_{key}": value for key, value in stats.items()})
        if self.degradation.enabled:
            now = self.kernel.now
            row["fault_downtime"] = self.degradation.total_downtime(now)
            row["fault_availability"] = self.degradation.availability(
                self.config.n_sites, now)
        return row

    def max_staleness(self) -> float:
        """Worst secondary-copy staleness (local mode's temporal
        inconsistency measure)."""
        return self.catalog.max_staleness(self.kernel.now)
