"""The local-ceiling / replication architecture (Section 4, second
approach) — the paper's winner.

Every data object is fully replicated (R1); updates happen only at the
primary's site (R2, single-writer/multiple-reader); and a transaction
commits *before* remote secondary copies are updated (R3) — remote
copies are historical, propagated asynchronously.  "Since we do not have
deadlocks at each site, and locks are not allowed to be held across the
network, we cannot have distributed deadlocks."

Mechanically:

- each site runs its own :class:`PriorityCeiling` over its local copy
  set; all lock traffic is site-local (direct protocol calls — the
  paper's intra-site IPC that bypasses the Message Server);
- reads always hit the local copy (primary or secondary);
- at commit, the update's new values are installed at the local
  primaries, then :class:`ReplicaUpdate` messages fan out to the other
  sites, where a *replica applier* installs each one under a local
  write lock (so propagation consumes real concurrency at the remote
  site — the cost the paper notes limits the local approach as
  communication delay grows);
- appliers use last-writer-wins by version timestamp, so reordered
  deliveries never roll a copy backwards.

Fault tolerance (see :mod:`repro.faults`): under a recovery policy the
fan-out rides bounded-retry :func:`~repro.dist.comms.courier`
processes, and the applier deduplicates by (origin site, origin tid,
oid, version ts) so a retried update is acknowledged but applied only
once.  Applier transactions are site-resident: a crash aborts them
(locks released through the protocol's own abort path) and the origin's
courier re-delivers after recovery.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..db.locks import LockMode
from ..db.replication import ReplicaCatalog
from ..db.versions import MultiVersionStore
from ..kernel.timers import DeadlineTimer
from ..txn.manager import CostModel
from ..txn.transaction import (DeadlineMiss, Transaction,
                               TransactionAbort, TransactionType)
from .comms import RecoveryPolicy, courier
from .message import Ack, ReplicaUpdate
from .site import Site

REPLICA_SERVICE = "replica"


# ----------------------------------------------------------------------
# replica propagation
# ----------------------------------------------------------------------
def replica_applier(site: Site, catalog: ReplicaCatalog,
                    costs: CostModel,
                    versions: Optional[MultiVersionStore] = None,
                    stats=None):
    """Generator body: receives ReplicaUpdates, spawns one applier
    transaction per update.

    At-least-once delivery makes duplicates normal under a fault plan:
    an update already applied here (keyed by origin site, origin tid,
    oid and version timestamp) is re-acknowledged immediately and not
    re-installed.
    """
    port = site.register_service(REPLICA_SERVICE)
    while True:
        message = yield port.receive()
        if not isinstance(message, ReplicaUpdate):
            raise TypeError(f"replica applier got {message!r}")
        key = (message.sender_site, message.origin_tid, message.oid,
               message.timestamp)
        if key in site.applied_updates:
            if stats is not None:
                stats.duplicates_suppressed += 1
            _ack_update(site, message)
            continue
        if key in site.pending_updates:
            # An applier for this very update is still in flight
            # (waiting on the lock or the CPU): dropping the duplicate
            # is safe — no ack yet, so the courier keeps custody until
            # the first copy lands and future retries are re-acked.
            if stats is not None:
                stats.duplicates_suppressed += 1
            continue
        site.pending_updates.add(key)
        txn = Transaction(
            operations=[(message.oid, LockMode.WRITE)],
            arrival_time=site.kernel.now,
            deadline=float("inf"),
            priority=message.origin_priority,
            site=site.site_id,
            txn_type=TransactionType.UPDATE)
        body = _apply_update(site, catalog, costs, txn, message, versions)
        txn.process = site.kernel.spawn(
            body, f"replica-{site.site_id}-oid{message.oid}",
            priority=txn.priority)
        txn.process.payload = txn
        site.adopt(txn.process)


def _ack_update(site: Site, message: ReplicaUpdate) -> None:
    if message.reply_to is None:
        return
    reply_site, reply_name = message.reply_to
    site.send(reply_site, Ack(target=reply_name,
                              sender_site=site.site_id,
                              tag=f"applied-{message.oid}"))


def _apply_update(site: Site, catalog: ReplicaCatalog, costs: CostModel,
                  txn: Transaction, message: ReplicaUpdate,
                  versions: Optional[MultiVersionStore]):
    cc = site.ceiling
    tracer = cc.tracer
    key = (message.sender_site, message.origin_tid, message.oid,
           message.timestamp)
    txn.mark_started(site.kernel.now)
    cc.register(txn)
    if tracer is not None:
        tracer.txn_start(site.kernel.now, txn, applier=True)
    try:
        yield cc.acquire(txn, message.oid, LockMode.WRITE)
        if costs.apply_cpu > 0:
            yield site.cpu.use(costs.apply_cpu)
        data_object = site.database.object(message.oid)
        if message.timestamp >= data_object.version_ts:
            data_object.write(message.value, message.timestamp)
            catalog.record_write(site.site_id, message.oid,
                                 message.timestamp)
        site.replica_apply_latencies.append(
            site.kernel.now - message.timestamp)
        if versions is not None:
            versions.install(message.oid, message.timestamp,
                             message.value)
        cc.release_all(txn)
        txn.mark_committed(site.kernel.now)
        if cc.sanitizer is not None:
            cc.sanitizer.on_commit(txn)
        if tracer is not None:
            tracer.txn_commit(site.kernel.now, txn)
        # Dedup memory + ack only after the install is durable, so a
        # crash between receive and apply leaves the update re-playable.
        site.applied_updates.add(key)
        _ack_update(site, message)
    except TransactionAbort:
        # Site crash (or other abort) mid-apply: release locks and
        # vanish.  No ack is sent, so the origin's courier re-delivers.
        cc.abort(txn)
        if tracer is not None:
            tracer.txn_abort(site.kernel.now, txn, reason="crash")
    finally:
        site.pending_updates.discard(key)
        cc.deregister(txn)


# ----------------------------------------------------------------------
# the transaction manager (local mode)
# ----------------------------------------------------------------------
def local_transaction_manager(sites: List[Site],
                              catalog: ReplicaCatalog, txn: Transaction,
                              costs: CostModel,
                              on_done: Callable[[Transaction], None],
                              versions: Optional[List[MultiVersionStore]]
                              = None,
                              policy: Optional[RecoveryPolicy] = None):
    """Generator body for a transaction under the local approach.

    Without a recovery ``policy`` the commit fan-out is the historical
    fire-and-forget send (bit-identical to the pre-fault code).  With
    one, each (object, destination) update rides its own courier so a
    lossy network cannot silently strand a secondary copy.
    """
    site = sites[txn.site]
    kernel = site.kernel
    cc = site.ceiling
    catalog.check_update_locality(txn.site, txn.write_set)  # R2
    txn.mark_started(kernel.now)
    cc.register(txn)
    tracer = cc.tracer
    if tracer is not None:
        tracer.txn_start(kernel.now, txn)
    probe = kernel.txn_telemetry
    if probe is not None:
        probe.on_start(kernel.now)
    timer = DeadlineTimer(kernel, txn.process, txn.deadline,
                          lambda: DeadlineMiss(txn.tid))
    try:
        for oid, mode in txn.operations:
            blocked_at = kernel.now
            if probe is not None:
                probe.on_block(blocked_at)
            yield cc.acquire(txn, oid, mode)
            if probe is not None:
                probe.on_unblock(kernel.now, kernel.now - blocked_at)
            txn.blocked_time += kernel.now - blocked_at
            yield site.cpu.use(costs.cpu_per_object)
            data_object = site.database.object(oid)
            if mode is LockMode.READ:
                data_object.read()
        if costs.commit_cpu > 0:
            yield site.cpu.use(costs.commit_cpu)
        # Commit: install at local primaries, then release (strict 2PL).
        commit_ts = kernel.now
        for oid in sorted(txn.write_set):
            site.database.object(oid).write(float(txn.tid), commit_ts)
            catalog.record_write(site.site_id, oid, commit_ts)
            if versions is not None:
                versions[site.site_id].install(oid, commit_ts,
                                               float(txn.tid))
        cc.release_all(txn)
        txn.mark_committed(kernel.now)
        if cc.sanitizer is not None:
            cc.sanitizer.on_commit(txn)
        if tracer is not None:
            tracer.txn_commit(kernel.now, txn)
        if probe is not None:
            probe.on_commit(kernel.now)
        # R3: committed first, now propagate asynchronously.
        if policy is None:
            for oid in sorted(txn.write_set):
                for other in sites:
                    if other.site_id == site.site_id:
                        continue
                    site.send(other.site_id, ReplicaUpdate(
                        target=REPLICA_SERVICE,
                        sender_site=site.site_id,
                        oid=oid, value=float(txn.tid),
                        timestamp=commit_ts,
                        origin_priority=txn.priority))
        else:
            for oid in sorted(txn.write_set):
                for other in sites:
                    if other.site_id == site.site_id:
                        continue
                    spawn_update_courier(
                        site, other.site_id, oid, float(txn.tid),
                        commit_ts, txn.priority, txn.tid, policy)
    except TransactionAbort:
        cc.abort(txn)
        txn.mark_missed(kernel.now)
        if tracer is not None:
            tracer.txn_miss(kernel.now, txn, reason="deadline")
        if probe is not None:
            probe.on_renege(kernel.now)
    finally:
        timer.cancel()
        cc.deregister(txn)
        on_done(txn)


def spawn_update_courier(site: Site, dst: int, oid: int, value: float,
                         timestamp: float, origin_priority: float,
                         origin_tid: int,
                         policy: RecoveryPolicy) -> None:
    """Fire one bounded-retry courier carrying a ReplicaUpdate."""
    tag = f"applied-{oid}"
    body = courier(
        site, dst,
        lambda addr: ReplicaUpdate(
            target=REPLICA_SERVICE, sender_site=site.site_id,
            oid=oid, value=value, timestamp=timestamp,
            origin_priority=origin_priority, origin_tid=origin_tid,
            reply_to=addr),
        policy, f"prop-{origin_tid}-{oid}-{dst}",
        match=lambda m: isinstance(m, Ack) and m.tag == tag)
    site.adopt(site.kernel.spawn(
        body, f"prop-courier-{origin_tid}-{oid}-{dst}",
        priority=float("inf")))
