"""Temporally consistent snapshot reads (§4's multiversion mechanism).

"If the system provides multiple versions of data objects, ensuring a
temporally consistent view becomes a real-time scheduling problem in
which the time lags in the distributed versions need to be controlled.
Once the time lags can be controlled by the timestamps of data objects,
transactions can read the proper versions of distributed data objects,
and ensure that decisions are based on temporally consistent data."

With ``temporal_versions`` enabled, every committed write is installed
into each site's :class:`MultiVersionStore` (locally at commit, remotely
when the replica applier runs).  A *snapshot read* at time ``t`` then
returns, for every object, the latest version with timestamp <= t —
a cross-site consistent view, **without acquiring any locks**: versions
are immutable once installed, so readers cannot conflict with writers.

The catch is choosing ``t``: a site's store only surely contains all
versions older than (communication delay + apply latency).  The
:class:`SnapshotReader` tracks a conservative horizon from the observed
apply latencies.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..db.versions import MultiVersionStore
from ..kernel.timers import DeadlineTimer
from ..txn.transaction import (DeadlineMiss, Transaction,
                               TransactionAbort)
from .site import Site


class SnapshotReader:
    """Consistent cross-site reads over the systems' version stores."""

    def __init__(self, sites: List[Site],
                 versions: List[MultiVersionStore],
                 comm_delay: float):
        if versions is None:
            raise ValueError("snapshot reads require temporal_versions "
                             "to be enabled on the system")
        if len(sites) != len(versions):
            raise ValueError("one version store per site required")
        self.sites = sites
        self.versions = versions
        self.comm_delay = comm_delay

    # ------------------------------------------------------------------
    def observed_apply_horizon(self) -> float:
        """A conservative bound on how long a committed write may take
        to become visible at every site: the communication delay plus
        the worst apply latency observed so far."""
        worst = 0.0
        for site in self.sites:
            if site.replica_apply_latencies:
                worst = max(worst, max(site.replica_apply_latencies))
        return max(worst, self.comm_delay)

    def safe_snapshot_time(self, now: float,
                           margin: float = 0.0) -> float:
        """A timestamp at which every site's store is expected to be
        complete (clamped at 0)."""
        return max(0.0, now - self.observed_apply_horizon() - margin)

    # ------------------------------------------------------------------
    def read(self, site: int, oids, as_of: float
             ) -> Dict[int, Tuple[float, float]]:
        """Read ``oids`` from ``site``'s store as of ``as_of``:
        {oid: (version_ts, value)}."""
        store = self.versions[site]
        return {oid: store.read_as_of(oid, as_of) for oid in oids}

    def consistent_across_sites(self, oids, as_of: float) -> bool:
        """True if every site returns the identical snapshot — holds
        whenever ``as_of`` is at or before the safe snapshot time."""
        reference = self.read(0, oids, as_of)
        return all(self.read(site, oids, as_of) == reference
                   for site in range(1, len(self.versions)))


def snapshot_read_transaction(site: Site, reader: SnapshotReader,
                              txn: Transaction, cpu_per_object: float,
                              on_done: Callable[[Transaction], None],
                              margin: float = 0.0):
    """Generator body: a read-only transaction served from the local
    version store — no locks, no blocking, CPU only.

    The snapshot time is fixed at transaction start (the freshest time
    known-complete everywhere); results carry the version timestamps so
    the caller knows exactly how old its view is.
    """
    kernel = site.kernel
    txn.mark_started(kernel.now)
    timer = DeadlineTimer(kernel, txn.process, txn.deadline,
                          lambda: DeadlineMiss(txn.tid))
    try:
        as_of = reader.safe_snapshot_time(kernel.now, margin=margin)
        for oid, __ in txn.operations:
            yield site.cpu.use(cpu_per_object)
        result = reader.read(site.site_id, [oid for oid, __
                                            in txn.operations], as_of)
        txn.mark_committed(kernel.now)
        return result
    except TransactionAbort:
        # Deadline expiry — or the site crashing under the reader.
        txn.mark_missed(kernel.now)
    finally:
        timer.cancel()
        on_done(txn)
