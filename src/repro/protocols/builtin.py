"""Built-in protocol plugins: the paper's five plus the
multiprocessor suite.

Importing this module (which :mod:`repro.protocols` does on package
import) populates :data:`~repro.protocols.registry.REGISTRY`.  Each
spec is the single source of truth for the protocol's aliases, family
classification, config schema, factories and fingerprint revision —
no other module re-declares protocol names (lint rule RPL013).
"""

from __future__ import annotations

from ..cc.deadlock import VICTIM_POLICIES
from ..cc.dpcp import DistributedPriorityCeiling
from ..cc.priority_ceiling import PriorityCeiling
from ..cc.priority_inheritance import PriorityInheritance
from ..cc.queue_locks import FMLPQueueLock, MPCP
from ..cc.twopl import TwoPhaseLocking, TwoPhaseLockingPriority
from .registry import REGISTRY, ParamSpec, ProtocolSpec

SON_CHANG_1990 = "Son & Chang, ICDCS 1990"
BRANDENBURG_SURVEY = "Brandenburg, arXiv:1909.09600"
YANG_DIST = "Yang et al., arXiv:2007.00706"


def _victim_policy_param() -> ParamSpec:
    """The 2PL-family deadlock-resolution knob.  The paper's model is
    ``none``: cycles are counted but only deadline misses break them
    (the A5 ablation sweeps the alternatives)."""
    return ParamSpec(name="victim_policy", kind="str", default="none",
                     choices=VICTIM_POLICIES,
                     help="deadlock victim selection policy")


REGISTRY.register(ProtocolSpec(
    name="L",
    title="strict 2PL, FCFS queues and CPU",
    family="twopl", model_family="twopl", checker="twopl",
    factory=TwoPhaseLocking,
    aliases=("2pl",),
    paper=SON_CHANG_1990,
    params=(_victim_policy_param(),),
    paper_protocol=True,
    overlay_rank=3,
))

REGISTRY.register(ProtocolSpec(
    name="P",
    title="strict 2PL with priority queues and preemptive CPU",
    family="twopl", model_family="twopl", checker="twopl",
    factory=TwoPhaseLockingPriority,
    aliases=("2pl-priority",),
    paper=SON_CHANG_1990,
    params=(_victim_policy_param(),),
    paper_protocol=True,
    overlay_rank=2,
))

REGISTRY.register(ProtocolSpec(
    name="PI",
    title="2PL + basic priority inheritance",
    family="twopl", model_family="twopl", checker="twopl",
    factory=PriorityInheritance,
    aliases=("inheritance",),
    paper=f"{SON_CHANG_1990} (after Sha et al. 1987)",
    params=(_victim_policy_param(),),
    paper_protocol=True,
))

REGISTRY.register(ProtocolSpec(
    name="C",
    title="priority ceiling protocol, read/write semantics",
    family="ceiling", model_family="ceiling", checker="ceiling",
    factory=PriorityCeiling,
    aliases=("pcp", "ceiling"),
    paper=SON_CHANG_1990,
    paper_protocol=True,
    overlay_rank=1,
))

REGISTRY.register(ProtocolSpec(
    name="Cx",
    title="priority ceiling protocol, exclusive-only locks",
    family="ceiling", model_family="ceiling", checker="ceiling",
    factory=lambda kernel: PriorityCeiling(kernel,
                                           exclusive_only=True),
    aliases=("pcp-exclusive",),
    paper=f"{SON_CHANG_1990} (the §5 ablation)",
    paper_protocol=True,
))

REGISTRY.register(ProtocolSpec(
    name="mpcp",
    title="multiprocessor PCP: per-resource priority queues with "
          "global ceiling inflation",
    family="queue", model_family="twopl", checker="twopl",
    factory=MPCP,
    aliases=("m-pcp",),
    paper=f"Rajkumar 1990; {BRANDENBURG_SURVEY}",
    params=(_victim_policy_param(),),
))

REGISTRY.register(ProtocolSpec(
    name="dpcp",
    title="distributed PCP: resource-local ceiling agents at each "
          "object's primary site",
    family="ceiling", model_family="ceiling", checker="ceiling",
    factory=DistributedPriorityCeiling,
    aliases=("d-pcp",),
    paper=f"Rajkumar/Sha; {YANG_DIST}",
    placement="primary",
))

REGISTRY.register(ProtocolSpec(
    name="fmlp",
    title="FMLP-style lock: FIFO resource queues + priority "
          "inheritance",
    family="queue", model_family="twopl", checker="twopl",
    factory=FMLPQueueLock,
    aliases=("fifo-queue",),
    paper=f"Block et al. 2007; {BRANDENBURG_SURVEY}",
    params=(_victim_policy_param(),),
))
