"""The protocol plugin registry.

Every concurrency-control protocol the repo knows — the paper's five
(L, P, PI, C, Cx) and the post-paper multiprocessor suite (mpcp, dpcp,
fmlp) — is described by one :class:`ProtocolSpec` registered here.  A
spec declares everything the rest of the stack needs to treat the
protocol generically:

- **identity** — canonical name, aliases, human title, paper citation;
- **family** — the implementation family (``twopl`` / ``ceiling`` /
  ``queue``), the analytic-model family the :mod:`repro.model` solvers
  branch on, and the sanitizer checker family;
- **configuration** — a per-protocol parameter schema
  (:class:`ParamSpec`) validated by :mod:`repro.core.config`;
- **factories** — a single-site/one-manager constructor plus the
  distributed placement hooks (where lock managers live in global
  mode, and how lock requests are routed to them);
- **fingerprint contribution** — a ``name@revision`` token folded into
  exec-cache fingerprints so bumping one protocol's ``revision``
  invalidates exactly that protocol's cached rows.

Consumers never test protocol names against string literals (lint rule
RPL013 bans that outside this package); they ask the registry.
"""

from __future__ import annotations

import dataclasses
from typing import (Any, Callable, Dict, Iterable, List, Mapping,
                    Optional, Tuple, Union)

#: Implementation families: how the protocol orders and admits lock
#: requests.  ``queue`` is the post-paper suspension-based queue-lock
#: family (MPCP/FMLP) surveyed by Brandenburg (arXiv:1909.09600).
FAMILIES = ("twopl", "ceiling", "queue")
#: Analytic-model families the blocking solvers implement.
MODEL_FAMILIES = ("twopl", "ceiling")
#: Runtime-sanitizer checker families.
CHECKER_FAMILIES = ("twopl", "ceiling")
#: Global-mode lock-manager placements: ``manager`` keeps every
#: ceiling decision at the configured ``gcm_site`` (the paper's global
#: ceiling manager); ``primary`` places a resource-local agent at each
#: object's primary site (DPCP's synchronization processors).
PLACEMENTS = ("manager", "primary")

Options = Union[None, Mapping[str, Any],
                Iterable[Tuple[str, Any]]]


class UnknownProtocolError(ValueError):
    """Lookup failed; the message lists every registered name/alias."""


@dataclasses.dataclass(frozen=True)
class ParamSpec:
    """One per-protocol configuration parameter.

    Values arrive as strings when they come from CLI/config
    ``protocol_options`` pairs; :meth:`coerce` turns them into the
    declared kind before :meth:`validate` checks choices.
    """

    name: str
    kind: str = "str"  # "str" | "int" | "float" | "bool"
    default: Any = None
    choices: Optional[Tuple[Any, ...]] = None
    help: str = ""

    def coerce(self, raw: Any) -> Any:
        if self.kind == "bool":
            if isinstance(raw, bool):
                return raw
            if isinstance(raw, str) and raw.lower() in ("true", "1",
                                                        "yes", "on"):
                return True
            if isinstance(raw, str) and raw.lower() in ("false", "0",
                                                        "no", "off"):
                return False
            raise ValueError(f"parameter {self.name!r} expects a "
                             f"boolean, got {raw!r}")
        try:
            if self.kind == "int":
                return int(raw)
            if self.kind == "float":
                return float(raw)
        except (TypeError, ValueError):
            raise ValueError(f"parameter {self.name!r} expects "
                             f"{self.kind}, got {raw!r}") from None
        if not isinstance(raw, str):
            raise ValueError(f"parameter {self.name!r} expects a "
                             f"string, got {raw!r}")
        return raw

    def validate(self, value: Any) -> Any:
        if self.choices is not None and value not in self.choices:
            raise ValueError(f"parameter {self.name!r} must be one of "
                             f"{self.choices}, got {value!r}")
        return value


@dataclasses.dataclass(frozen=True)
class ProtocolSpec:
    """One registered protocol plugin."""

    #: Canonical name (the ``--protocol`` value; case-insensitive).
    name: str
    #: One-line human title for docs and benchmark tables.
    title: str
    #: Implementation family; one of :data:`FAMILIES`.
    family: str
    #: Analytic-model family; one of :data:`MODEL_FAMILIES`.
    model_family: str
    #: Sanitizer checker family; one of :data:`CHECKER_FAMILIES`.
    checker: str
    #: ``factory(kernel, **validated_options) -> ConcurrencyControl``.
    #: Used for the single-site system, for every distributed lock
    #: manager instance, and for local-mode per-site managers.
    factory: Callable[..., Any]
    #: Alternate lookup names (case-insensitive, like ``name``).
    aliases: Tuple[str, ...] = ()
    #: Source citation rendered in the README protocol table.
    paper: str = ""
    #: Per-protocol configuration schema.
    params: Tuple[ParamSpec, ...] = ()
    #: Fingerprint revision: bump when this protocol's semantics
    #: change, invalidating exactly its cached results.
    revision: str = "1"
    #: True for the five protocols evaluated in the source paper.
    paper_protocol: bool = False
    #: Position in the model-vs-sim overlay cast (None: not overlaid).
    overlay_rank: Optional[int] = None
    #: Global-mode manager placement; one of :data:`PLACEMENTS`.
    placement: str = "manager"

    # ------------------------------------------------------------------
    def fingerprint_token(self) -> str:
        """The exec-cache contribution: ``name@revision``."""
        return f"{self.name}@{self.revision}"

    def validate_options(self, options: Options) -> Dict[str, Any]:
        """Coerce and validate ``options`` against the schema.

        Accepts a mapping or ``(key, value)`` pairs (the
        fingerprint-friendly tuple form configs carry).  Unknown keys
        raise; omitted parameters take their declared defaults.
        """
        raw: Dict[str, Any] = {}
        if options:
            pairs = (options.items() if isinstance(options, Mapping)
                     else options)
            for key, value in pairs:
                if key in raw:
                    raise ValueError(f"duplicate protocol option "
                                     f"{key!r}")
                raw[key] = value
        known = {param.name: param for param in self.params}
        unknown = sorted(set(raw) - set(known))
        if unknown:
            raise ValueError(
                f"unknown option(s) {unknown} for protocol "
                f"{self.name!r}; supported: {sorted(known) or 'none'}")
        validated: Dict[str, Any] = {}
        for param in self.params:
            if param.name in raw:
                validated[param.name] = param.validate(
                    param.coerce(raw[param.name]))
            elif param.default is not None:
                validated[param.name] = param.default
        return validated

    def build(self, kernel: Any, options: Options = None) -> Any:
        """Instantiate the protocol for one lock-manager domain."""
        return self.factory(kernel, **self.validate_options(options))

    # ------------------------------------------------------------------
    # distributed placement hooks (global mode)
    # ------------------------------------------------------------------
    def manager_sites(self, n_sites: int,
                      gcm_site: int) -> Tuple[int, ...]:
        """Sites that host a lock manager under the global approach."""
        if self.placement == "primary":
            return tuple(range(n_sites))
        return (gcm_site,)

    def lock_router(self, catalog: Any,
                    gcm_site: int) -> Optional[Callable[[int], int]]:
        """Per-oid manager-site routing, or None for the single-manager
        legacy path (whose message sequence must stay bit-identical)."""
        if self.placement == "primary":
            return catalog.primary_site
        return None


class ProtocolRegistry:
    """Name → spec registry with alias-aware, case-insensitive lookup."""

    def __init__(self) -> None:
        self._specs: Dict[str, ProtocolSpec] = {}  # insertion-ordered
        self._lookup: Dict[str, ProtocolSpec] = {}  # casefolded keys

    # ------------------------------------------------------------------
    def register(self, spec: ProtocolSpec) -> ProtocolSpec:
        if spec.family not in FAMILIES:
            raise ValueError(f"protocol {spec.name!r}: family must be "
                             f"one of {FAMILIES}, got {spec.family!r}")
        if spec.model_family not in MODEL_FAMILIES:
            raise ValueError(f"protocol {spec.name!r}: model_family "
                             f"must be one of {MODEL_FAMILIES}, got "
                             f"{spec.model_family!r}")
        if spec.checker not in CHECKER_FAMILIES:
            raise ValueError(f"protocol {spec.name!r}: checker must be "
                             f"one of {CHECKER_FAMILIES}, got "
                             f"{spec.checker!r}")
        if spec.placement not in PLACEMENTS:
            raise ValueError(f"protocol {spec.name!r}: placement must "
                             f"be one of {PLACEMENTS}, got "
                             f"{spec.placement!r}")
        for key in (spec.name,) + spec.aliases:
            folded = key.casefold()
            if folded in self._lookup:
                holder = self._lookup[folded]
                what = ("name" if key == spec.name else
                        f"alias {key!r}")
                raise ValueError(
                    f"protocol {spec.name!r}: {what} collides with "
                    f"registered protocol {holder.name!r}")
        self._specs[spec.name] = spec
        self._lookup[spec.name.casefold()] = spec
        for alias in spec.aliases:
            self._lookup[alias.casefold()] = spec
        return spec

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def resolve(self, name: str) -> ProtocolSpec:
        """Spec for a canonical name or alias (case-insensitive)."""
        spec = (self._lookup.get(name.casefold())
                if isinstance(name, str) else None)
        if spec is None:
            raise UnknownProtocolError(self.unknown_message(name))
        return spec

    def unknown_message(self, name: Any) -> str:
        """The stable unknown-protocol message: canonical names in
        registration order, aliases sorted — never hash-ordered."""
        return (f"unknown protocol {name!r}; expected one of "
                f"{self.names()} (aliases: "
                f"{', '.join(self.aliases())})")

    def __contains__(self, name: str) -> bool:
        return (isinstance(name, str)
                and name.casefold() in self._lookup)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def names(self) -> Tuple[str, ...]:
        """Canonical names in registration order."""
        return tuple(self._specs)

    def aliases(self) -> Tuple[str, ...]:
        """Every alias, sorted."""
        out: List[str] = []
        for spec in self._specs.values():
            out.extend(spec.aliases)
        return tuple(sorted(out))

    def specs(self) -> Tuple[ProtocolSpec, ...]:
        return tuple(self._specs.values())

    def family_names(self, family: str) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self._specs.values()
                     if spec.family == family)

    def model_family_names(self, model_family: str) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self._specs.values()
                     if spec.model_family == model_family)

    def overlay_cast(self) -> Tuple[str, ...]:
        """Protocols in the model-vs-sim overlay, in rank order."""
        ranked = [spec for spec in self._specs.values()
                  if spec.overlay_rank is not None]
        ranked.sort(key=lambda spec: spec.overlay_rank)
        return tuple(spec.name for spec in ranked)

    def checker_family(self, name: Any) -> Optional[str]:
        """Sanitizer checker family, or None for unregistered names
        (ad-hoc protocol objects fall back to duck typing)."""
        if isinstance(name, str):
            spec = self._lookup.get(name.casefold())
            if spec is not None:
                return spec.checker
        return None

    def fingerprint_token(self, name: str) -> str:
        return self.resolve(name).fingerprint_token()


#: The process-wide registry; :mod:`repro.protocols.builtin` populates
#: it on package import.
REGISTRY = ProtocolRegistry()
