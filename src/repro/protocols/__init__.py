"""repro.protocols — the protocol plugin registry.

Importing the package registers the built-in plugins (the paper's
L/P/PI/C/Cx plus mpcp/dpcp/fmlp) into :data:`REGISTRY`; everything
else in the repo resolves protocols through it — config validation,
system builders, model family classification, sanitizer checker
selection and exec-cache fingerprints.  See DESIGN.md §12.
"""

from .registry import (CHECKER_FAMILIES, FAMILIES, MODEL_FAMILIES,
                       PLACEMENTS, REGISTRY, ParamSpec,
                       ProtocolRegistry, ProtocolSpec,
                       UnknownProtocolError)
from . import builtin  # noqa: F401  (side effect: populate REGISTRY)

__all__ = [
    "CHECKER_FAMILIES",
    "FAMILIES",
    "MODEL_FAMILIES",
    "PLACEMENTS",
    "ParamSpec",
    "ProtocolRegistry",
    "ProtocolSpec",
    "REGISTRY",
    "UnknownProtocolError",
]
