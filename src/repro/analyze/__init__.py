"""repro.analyze — correctness tooling for the prototyping environment.

Two independent prongs (see DESIGN.md, "Correctness tooling"):

- **static lint** (:mod:`repro.analyze.engine`,
  :mod:`repro.analyze.rules`): an AST rule engine run as ``repro lint``
  or ``python -m repro.analyze``, with determinism- and
  protocol-hygiene rules specific to this codebase;
- **runtime sanitizer** (:mod:`repro.analyze.sanitizer`,
  :mod:`repro.analyze.invariants`): opt-in invariant checkers hooked
  into the lock table, the concurrency-control protocols, transaction
  managers and the replica catalog, re-deriving each protocol's
  contract independently (double-entry bookkeeping for invariants).
"""

from .engine import Finding, LintEngine, render_json, render_text
from .invariants import (CeilingChecker, ProtocolChecker,
                         ReplicationChecker, TwoPhaseChecker, Violation)
from .rules import DEFAULT_RULES, RULE_INDEX
from .sanitizer import (ENV_VAR, Sanitizer, SanitizerViolation,
                        current_sanitizer, install_sanitizer, sanitize,
                        sanitizer_enabled, uninstall_sanitizer)

__all__ = [
    "CeilingChecker",
    "DEFAULT_RULES",
    "ENV_VAR",
    "Finding",
    "LintEngine",
    "ProtocolChecker",
    "RULE_INDEX",
    "ReplicationChecker",
    "Sanitizer",
    "SanitizerViolation",
    "TwoPhaseChecker",
    "Violation",
    "current_sanitizer",
    "install_sanitizer",
    "render_json",
    "render_text",
    "sanitize",
    "sanitizer_enabled",
    "uninstall_sanitizer",
]
