"""Lightweight dataflow facts for the flow-aware lint rules.

The syntactic rules of :mod:`repro.analyze.rules` inspect one AST node
at a time; the rules in :mod:`repro.analyze.flow_rules` need three
facts a single node cannot provide:

- **reaching definitions** (per function, flow-insensitive): every
  value ever assigned to a local name.  Good enough to decide "is this
  name always a string constant?" — the question the stream-name and
  wall-clock-alias rules ask — without a full CFG fixpoint, because a
  name with *any* non-constant definition is simply not provably
  constant.
- **module constants**: module-level ``NAME = <literal>`` bindings
  (single assignment), so ``rng.stream(STREAM)`` resolves.
- **a module-local call graph** (name-based): edges from each function
  or method to the local callables it invokes, with attribute calls
  ``<anything>.foo(...)`` resolved to every same-named method in the
  module.  Deliberately over-approximate — reachability built on it
  only ever *excuses* code, never condemns it, so over-approximation
  keeps the rules sound (no false positives from missed edges).

Everything here is derived from one parsed tree with no imports
resolved; a small keyed cache lets several rules share the analysis of
one file.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

#: Sentinel for "assigned something we cannot evaluate".
UNKNOWN = object()


class FunctionScope:
    """One function or method, with its local definitions."""

    def __init__(self, qualname: str, node: Any,
                 class_name: Optional[str]):
        self.qualname = qualname
        self.node = node
        self.class_name = class_name
        #: local name -> list of assigned value nodes (UNKNOWN for
        #: targets of loops, withs, parameters, augmented assignments…)
        self.definitions: Dict[str, List[object]] = {}
        self._collect()

    def _collect(self) -> None:
        args = self.node.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)
                    + [a for a in (args.vararg, args.kwarg) if a]):
            self.definitions.setdefault(arg.arg, []).append(UNKNOWN)
        for node in own_nodes(self.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._define(target, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value:
                self._define(node.target, node.value)
            elif isinstance(node, (ast.AugAssign, ast.NamedExpr)):
                self._define(node.target,
                             node.value if isinstance(node, ast.NamedExpr)
                             else None)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._define(node.target, None)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        self._define(item.optional_vars, None)
            elif isinstance(node, ast.comprehension):
                self._define(node.target, None)

    def _define(self, target: ast.AST, value) -> None:
        if isinstance(target, ast.Name):
            self.definitions.setdefault(target.id, []).append(
                value if value is not None else UNKNOWN)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._define(element, None)
        elif isinstance(target, ast.Starred):
            self._define(target.value, None)


def own_nodes(func: Any) -> Iterator[ast.AST]:
    """Descendants of ``func`` that are not inside a nested function."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class ModuleDataflow:
    """Per-module facts shared by the flow rules."""

    def __init__(self, tree: ast.Module):
        self.tree = tree
        self.module_constants: Dict[str, object] = {}
        self.imported_names: Set[str] = set()
        #: local alias -> imported module name (``import time as t``).
        self.module_aliases: Dict[str, str] = {}
        #: local name -> (module, original) for ``from m import x``.
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        self.functions: List[FunctionScope] = []
        #: caller qualname -> set of callee names (bare and method).
        self.call_edges: Dict[str, Set[str]] = {}
        #: class name -> list of its base-name strings.
        self.class_bases: Dict[str, List[str]] = {}
        #: class name -> its method qualnames.
        self.class_methods: Dict[str, List[str]] = {}
        self._collect()

    # ------------------------------------------------------------------
    def _collect(self) -> None:
        assigned_twice: Set[str] = set()
        for node in self.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    name = target.id
                    if name in self.module_constants or \
                            name in assigned_twice:
                        self.module_constants.pop(name, None)
                        assigned_twice.add(name)
                    elif isinstance(node.value, ast.Constant):
                        self.module_constants[name] = node.value.value
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".")[0]
                    self.imported_names.add(local)
                    self.module_aliases[local] = item.name
            elif isinstance(node, ast.ImportFrom):
                for item in node.names:
                    local = item.asname or item.name
                    self.imported_names.add(local)
                    self.from_imports[local] = (node.module or "",
                                                item.name)
        self._collect_functions(self.tree, prefix="", class_name=None)

    def _collect_functions(self, node: ast.AST, prefix: str,
                           class_name: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                bases = []
                for base in child.bases:
                    if isinstance(base, ast.Name):
                        bases.append(base.id)
                    elif isinstance(base, ast.Attribute):
                        bases.append(base.attr)
                self.class_bases[child.name] = bases
                self.class_methods.setdefault(child.name, [])
                self._collect_functions(child, f"{child.name}.",
                                        class_name=child.name)
            elif isinstance(child, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                scope = FunctionScope(f"{prefix}{child.name}", child,
                                      class_name)
                self.functions.append(scope)
                if class_name is not None:
                    self.class_methods[class_name].append(
                        scope.qualname)
                self.call_edges[scope.qualname] = {
                    callee for callee in self._called_names(child)}
                # Nested defs still get their own scopes.
                self._collect_functions(child, f"{prefix}{child.name}.",
                                        class_name)

    @staticmethod
    def _called_names(func: Any) -> Set[str]:
        """Names this function may invoke — calls plus bare references
        (a function passed as a callback is 'called' for reachability
        purposes; the kernel's ``Call(attempt, ...)`` pattern relies
        on this)."""
        names: Set[str] = set()
        for node in own_nodes(func):
            if isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Load):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
        return names

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def scope_at(self, node: ast.AST) -> Optional[FunctionScope]:
        """The innermost collected scope whose body contains ``node``."""
        best: Optional[FunctionScope] = None
        for scope in self.functions:
            func = scope.node
            if (func.lineno <= node.lineno
                    and node.lineno <= max(
                        getattr(func, "end_lineno", func.lineno),
                        func.lineno)):
                if best is None or func.lineno >= best.node.lineno:
                    best = scope
        return best

    def is_static_string(self, node: ast.AST,
                         scope: Optional[FunctionScope]) -> bool:
        """Is this expression derived only from constants, attributes
        and module-level constants (the named-stream discipline)?"""
        if isinstance(node, ast.Constant):
            return True
        if isinstance(node, ast.Attribute):
            # Attribute reads (e.g. ``self._prefix``) are part of the
            # discipline: set once at construction, lexically evident.
            return True
        if isinstance(node, ast.JoinedStr):
            return all(
                self.is_static_string(part.value, scope)
                if isinstance(part, ast.FormattedValue)
                else isinstance(part, ast.Constant)
                for part in node.values)
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Mod)):
            return (self.is_static_string(node.left, scope)
                    and self.is_static_string(node.right, scope))
        if isinstance(node, ast.Name):
            if node.id in self.module_constants:
                return True
            if node.id in self.from_imports and node.id.isupper():
                # Imported ALL_CAPS binding: constant by convention.
                return True
            if scope is not None:
                definitions = scope.definitions.get(node.id)
                if definitions:
                    return all(
                        definition is not UNKNOWN
                        and isinstance(definition, ast.AST)
                        and self.is_static_string(definition, scope)
                        for definition in definitions)
        return False

    def reachable(self, roots: Set[str]) -> Set[str]:
        """Names transitively callable from ``roots`` (by last path
        segment, matching how the edges were recorded)."""
        short = {qualname.rsplit(".", 1)[-1]: set()
                 for qualname in self.call_edges}
        for qualname in self.call_edges:
            short.setdefault(qualname.rsplit(".", 1)[-1],
                             set()).add(qualname)
        seen: Set[str] = set()
        frontier = [qualname for qualname in self.call_edges
                    if qualname in roots
                    or qualname.rsplit(".", 1)[-1] in roots]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for callee in self.call_edges.get(current, ()):
                for candidate in short.get(callee, ()):
                    if candidate not in seen:
                        frontier.append(candidate)
                seen.add(callee)
        return seen


#: Small keyed cache so the three flow rules share one analysis per
#: file.  Strong references to the trees keep ids stable.
_CACHE: Dict[int, Tuple[ast.Module, ModuleDataflow]] = {}


def analyze(tree: ast.Module) -> ModuleDataflow:
    cached = _CACHE.get(id(tree))
    if cached is not None and cached[0] is tree:
        return cached[1]
    if len(_CACHE) > 64:
        _CACHE.clear()
    dataflow = ModuleDataflow(tree)
    _CACHE[id(tree)] = (tree, dataflow)
    return dataflow
