"""Flow-aware lint rules (RPL010-RPL012), built on
:mod:`repro.analyze.dataflow`.

Each rule needs a fact that spans more than one AST node:

- **RPL010 — dynamic RNG stream name.**  The common-random-numbers
  discipline (see :mod:`repro.kernel.rng`) only works if stream names
  are *lexically evident*: a name computed at runtime can differ
  between two runs of one seed, silently splitting a stream and
  breaking run-to-run reproducibility.  The rule resolves the name
  argument through reaching definitions and module constants; string
  literals, f-strings over constants/attributes, and ``STREAM``-style
  constants all pass.
- **RPL011 — nondeterminism imported into a deterministic layer.**
  The kernel, protocol and distributed layers run on virtual time and
  seeded streams; ``time``/``datetime``/``random`` have no business
  being imported there at all (the syntactic rules RPL001/RPL002 only
  catch direct *calls*; an alias like ``clock = time.time`` then
  ``clock()`` slips through them — reaching definitions catch it).
- **RPL012 — orphaned mutation of shared protocol state.**  Every
  mutation of a lock manager's shared state (``waiting``,
  ``_waiting_by_oid``, ``locks``) must be reachable from its public
  API — the entry points the kernel and transaction managers call.  A
  mutating helper with no path from any entry point is dead code at
  best and a protocol bypass at worst (the classic refactor residue:
  the caller moved, the helper stayed).  Reachability runs over the
  module-local reference graph, over-approximated so only genuine
  orphans are flagged.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator, Optional, Set

from . import dataflow
from .engine import Finding
from .rules import Rule, _is_path_part

#: Drawing helpers of RngStreams whose first argument is the stream
#: name (checked only when that argument is an f-string — a plain
#: string literal is trivially static, a number means the receiver is
#: a bare random.Random).
_STREAM_HELPERS = {"exponential", "uniform", "randint", "sample",
                   "choice", "random"}

#: Modules whose presence in a deterministic layer is a finding.
_NONDETERMINISTIC_MODULES = {"time", "datetime", "random", "secrets"}

#: Shared lock-manager state attributes patrolled by RPL012.
_PROTOCOL_STATE = {"waiting", "_waiting_by_oid", "locks"}

#: Method names that mutate their receiver in place.
_MUTATORS = {"append", "remove", "pop", "clear", "insert", "extend",
             "setdefault", "update", "add", "discard", "grant",
             "release", "release_all"}


def _is_rng_module(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return normalized.endswith("kernel/rng.py")


class DynamicStreamNameRule(Rule):
    """RPL010: RNG stream name not statically derivable."""

    code = "RPL010"
    name = "dynamic-rng-stream-name"

    def applies_to(self, path: str) -> bool:
        return not (_is_path_part(path, "tests")
                    or _is_rng_module(path))

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        facts = dataflow.analyze(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or not node.args:
                continue
            if func.attr == "stream":
                pass
            elif (func.attr in _STREAM_HELPERS
                    and self._receiver_is_rng(func.value)
                    and isinstance(node.args[0], ast.JoinedStr)):
                pass
            else:
                continue
            name_arg = node.args[0]
            scope = facts.scope_at(node)
            if not facts.is_static_string(name_arg, scope):
                yield self.finding(
                    path, node,
                    f"RNG stream name {ast.unparse(name_arg)!r} is not "
                    f"statically derivable (constants, f-strings over "
                    f"constants/attributes, or module-level CONSTANTS); "
                    f"a runtime-computed name can split a stream "
                    f"between runs and break seed reproducibility")

    @staticmethod
    def _receiver_is_rng(base: ast.AST) -> bool:
        if isinstance(base, ast.Name):
            return base.id == "rng" or base.id.endswith("rng")
        if isinstance(base, ast.Attribute):
            return base.attr == "rng" or base.attr.endswith("rng")
        return False


class NondeterministicImportRule(Rule):
    """RPL011: time/datetime/random imported or aliased into the
    kernel/protocol/distributed layers."""

    code = "RPL011"
    name = "nondeterminism-in-deterministic-layer"
    #: Directory names this rule patrols.
    scoped_parts = ("kernel", "cc", "dist")

    def applies_to(self, path: str) -> bool:
        if _is_path_part(path, "tests") or _is_rng_module(path):
            return False
        return any(_is_path_part(path, part)
                   for part in self.scoped_parts)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        facts = dataflow.analyze(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    root = item.name.split(".")[0]
                    if root in _NONDETERMINISTIC_MODULES:
                        yield self.finding(
                            path, node,
                            f"'import {item.name}' in a deterministic "
                            f"layer; this code runs on virtual time "
                            f"and seeded streams (kernel.now, "
                            f"kernel.rng)")
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _NONDETERMINISTIC_MODULES:
                    names = [item.name for item in node.names
                             if item.name != "Random"]
                    if names:
                        yield self.finding(
                            path, node,
                            f"'from {node.module} import "
                            f"{', '.join(names)}' in a deterministic "
                            f"layer; use virtual time / seeded "
                            f"streams")
        # Aliased calls: f = time.time; ...; f()  — the reaching
        # definitions expose the alias even though the call site
        # mentions neither module.
        for scope in facts.functions:
            for node in dataflow.own_nodes(scope.node):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)):
                    continue
                for definition in scope.definitions.get(
                        node.func.id, ()):
                    label = self._nondeterministic_source(definition,
                                                         facts)
                    if label is not None:
                        yield self.finding(
                            path, node,
                            f"call through alias '{node.func.id}' of "
                            f"{label} in a deterministic layer")
                        break

    @staticmethod
    def _nondeterministic_source(definition: Any,
                                 facts: Any) -> Optional[str]:
        if definition is dataflow.UNKNOWN or not isinstance(
                definition, ast.AST):
            return None
        node = definition
        while isinstance(node, ast.Attribute):
            node = node.value
        if isinstance(node, ast.Name):
            module = facts.module_aliases.get(node.id)
            if module and module.split(".")[0] in \
                    _NONDETERMINISTIC_MODULES:
                return ast.unparse(definition)
        return None


class OrphanStateMutationRule(Rule):
    """RPL012: shared protocol state mutated by a method unreachable
    from the lock-manager entry points."""

    code = "RPL012"
    name = "orphan-protocol-state-mutation"
    #: Directory names this rule patrols (the lock managers).
    scoped_parts = ("cc",)

    def applies_to(self, path: str) -> bool:
        if _is_path_part(path, "tests"):
            return False
        return any(_is_path_part(path, part)
                   for part in self.scoped_parts)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        facts = dataflow.analyze(tree)
        roots = self._roots(facts)
        reachable = facts.reachable(roots)
        for scope in facts.functions:
            if scope.class_name is None:
                continue
            short = scope.qualname.rsplit(".", 1)[-1]
            if (scope.qualname in roots or scope.qualname in reachable
                    or short in reachable):
                continue
            for node, label in self._mutations(scope):
                yield self.finding(
                    path, node,
                    f"{scope.qualname} mutates shared protocol state "
                    f"({label}) but is unreachable from any public "
                    f"lock-manager entry point in this module — dead "
                    f"code or a concurrency-control bypass")

    def _roots(self, facts) -> Set[str]:
        roots: Set[str] = set()
        for scope in facts.functions:
            short = scope.qualname.rsplit(".", 1)[-1]
            if not short.startswith("_") or (short.startswith("__")
                                             and short.endswith("__")):
                roots.add(scope.qualname)
                continue
            if scope.class_name is not None:
                bases = facts.class_bases.get(scope.class_name, [])
                if any(base not in facts.class_bases
                       for base in bases):
                    # The base class lives in another module and may
                    # invoke this as a protocol hook: assume callable.
                    roots.add(scope.qualname)
        return roots

    def _mutations(self, scope):
        for node in dataflow.own_nodes(scope.node):
            if isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in _MUTATORS):
                    attr = self._state_attr(func.value)
                    if attr is not None:
                        yield node, f"self.{attr}.{func.attr}(...)"
            elif isinstance(node, (ast.Assign, ast.AugAssign,
                                   ast.Delete)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target]
                           if isinstance(node, ast.AugAssign)
                           else node.targets)
                for target in targets:
                    base = target
                    if isinstance(base, ast.Subscript):
                        base = base.value
                    attr = self._state_attr(base)
                    if attr is not None:
                        yield node, f"self.{attr}"

    @staticmethod
    def _state_attr(node: Any) -> Optional[str]:
        # self.<state> or self.<state>[...] receivers only.
        if isinstance(node, ast.Subscript):
            node = node.value
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in _PROTOCOL_STATE):
            return node.attr
        return None


FLOW_RULES = (
    DynamicStreamNameRule(),
    NondeterministicImportRule(),
    OrphanStateMutationRule(),
)

FLOW_RULE_INDEX = {
    "RPL010": "RNG stream name not statically derivable",
    "RPL011": "time/datetime/random in a deterministic layer",
    "RPL012": "orphaned mutation of shared lock-manager state",
}
