"""``repro lint`` / ``python -m repro.analyze`` — the lint front-end.

    repro lint                      # lint the installed repro package
    repro lint src tests            # lint explicit paths
    repro lint --format json        # machine-readable findings
    repro lint --select RPL001,RPL006
    repro lint --list-rules

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from .engine import LintEngine, render_json, render_text
from .rules import DEFAULT_RULES, RULE_INDEX


def default_target() -> Path:
    """The repro package directory (works from any working directory)."""
    return Path(__file__).resolve().parent.parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST lint for determinism and protocol hygiene "
                    "(rules RPL001-RPL013; suppress one occurrence "
                    "with '# noqa: <code>').")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: "
                             "the installed repro package)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule codes to enable "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule index and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for code, description in sorted(RULE_INDEX.items()):
            print(f"{code}  {description}")
        return 0
    select = None
    if args.select is not None:
        select = [code.strip() for code in args.select.split(",")
                  if code.strip()]
        unknown = [code for code in select
                   if code.upper() not in RULE_INDEX]
        if unknown:
            print(f"error: unknown rule code(s): {', '.join(unknown)}")
            return 2
    paths = ([Path(raw) for raw in args.paths] if args.paths
             else [default_target()])
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}")
        return 2
    engine = LintEngine(DEFAULT_RULES, select=select)
    findings = engine.check_paths(paths)
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0
