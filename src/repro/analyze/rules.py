"""The lint rules this codebase actually needs.

Every rule exists because the violation it detects has a concrete
failure mode in this repository:

- **RPL001 — wall-clock in simulation code.**  The simulation runs on
  deterministic *virtual* time; reading the host clock (``time.time``,
  ``datetime.now``) or sleeping on it makes results irreproducible and
  silently poisons the exec-engine's fingerprint cache (two runs with
  the same fingerprint would disagree).  The harness under
  ``repro/exec`` is exempt — measuring real elapsed time for progress
  and retry backoff is its job.
- **RPL002 — global randomness.**  ``random.random()`` and friends draw
  from the process-global RNG, whose state depends on import order and
  other callers; ``os.urandom`` is entropy by definition.  Model code
  must draw from the seeded per-stream RNGs of
  ``repro.kernel.rng.RngStreams`` (``random.Random`` instances are
  fine — the rule only bans the module-global API).
- **RPL003 — syscall constructed but not yielded.**  Kernel blocking
  operations (``port.receive()``, ``cpu.use(t)``, ``sem.wait()``,
  ``cc.acquire(...)``, ``Delay(t)``) *construct* a SysCall that only
  does something when yielded to the kernel.  A bare expression
  statement discards the syscall — the classic forgotten-``yield`` bug,
  which silently skips the block/delay.
- **RPL004 — blocking syscall outside a kernel process.**  The same
  constructors called (and discarded) in a non-generator function can
  never be yielded at all: blocking kernel operations only make sense
  inside process bodies.
- **RPL005 — fingerprint-unsafe config field.**  The exec cache keys on
  a canonical JSON encoding of config dataclasses
  (:mod:`repro.exec.fingerprint`).  Fields typed as ``Any``,
  ``Callable``, ``set``/``frozenset`` (iteration order varies with the
  hash seed) or other unencodable objects fall back to ``repr`` — which
  can embed memory addresses or unstable ordering, so equal configs
  stop hashing equally and the cache silently fragments or, worse,
  collides.
- **RPL006 — mutable default argument.**  The standard Python trap: the
  default is evaluated once and shared across calls.
- **RPL007 — ad-hoc output in protocol/dist modules.**  ``print`` and
  the ``logging`` module are banned from the concurrency-control and
  distributed layers: those layers report through the structured
  :class:`repro.trace.tracer.Tracer` (typed events, deterministic,
  zero-perturbation), and ad-hoc output either corrupts the CLI's
  table contract or depends on process-global logging configuration.
- **RPL009 — re-declared blocking-category literal.**  The blocking
  taxonomy (``direct``/``ceiling``/``network``/``other``) is a
  cross-layer contract shared by the protocols (classification), the
  trace layer (measured decomposition) and the analytic model
  (predicted decomposition); :mod:`repro.constants` is its single
  source of truth.  A re-declared string literal in those layers is a
  drift waiting to happen — one typo and a measured category silently
  stops matching its prediction.
- **RPL013 — hard-coded protocol-name literal.**  The protocol cast is
  a plugin registry (:mod:`repro.protocols`); every spec declares its
  family, model family, sanitizer checker and aliases there.  Code in
  the consuming layers (``cc``, ``dist``, ``model``, ``bench``) that
  compares against protocol-name literals or re-declares a tuple of
  them will silently miss protocols registered later — exactly the bug
  the registry exists to prevent.  Dispatch on the resolved spec's
  fields or derive sets from registry queries instead.

- **RPL014 — host clock outside the sanctioned gateway.**  In ``cc``,
  ``dist``, ``kernel`` and ``telemetry`` even *elapsed* host time
  (``time.perf_counter()``, ``monotonic()`` — allowed elsewhere by
  RPL001) must route through ``repro.telemetry.hostclock.host_clock``
  so every host-time read in the determinism-critical layers is
  auditable in one place.

Each rule reports ``(code, line, col, message)`` findings through the
engine; suppress a deliberate occurrence with ``# noqa: <code>``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from ..constants import BLOCKING_CATEGORIES
from .engine import Finding

#: Wall-clock functions of the ``time`` module (monotonic and
#: perf_counter are allowed: they measure elapsed host time for
#: reporting and never leak into simulation state).
_WALL_CLOCK_TIME = {"time", "time_ns", "sleep", "localtime", "gmtime",
                    "ctime", "asctime", "strftime"}
#: Wall-clock constructors on datetime classes.
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}
#: Module-global randomness (anything on the random module except the
#: Random class itself).
_GLOBAL_RANDOM = {"random", "randint", "randrange", "choice", "choices",
                  "shuffle", "sample", "uniform", "gauss", "seed",
                  "getrandbits", "betavariate", "expovariate",
                  "normalvariate", "vonmisesvariate", "paretovariate",
                  "triangular"}
#: Methods that construct blocking kernel syscalls.
_SYSCALL_METHODS = {"receive", "wait", "use", "acquire"}
#: Bare-name syscall constructors from repro.kernel.syscalls.
_SYSCALL_NAMES = {"Delay", "Join", "Spawn", "Now"}
#: Annotation heads that make a config field fingerprint-unsafe.
_UNSAFE_ANNOTATIONS = {"Any", "Callable", "object", "set", "Set",
                       "frozenset", "FrozenSet", "MutableSet",
                       "AbstractSet", "Process", "Kernel"}
#: Annotation heads that are always fingerprint-safe.
_SAFE_ANNOTATIONS = {"int", "float", "str", "bool", "bytes", "None",
                     "Optional", "List", "Tuple", "Dict", "Sequence",
                     "Mapping", "list", "tuple", "dict", "Union",
                     "Literal"}


def _module_aliases(tree: ast.Module, module: str) -> Set[str]:
    """Names the module is importable under (``import time as t``)."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == module:
                    aliases.add(item.asname or module)
    return aliases


def _from_imports(tree: ast.Module, module: str) -> Dict[str, str]:
    """{local name: original name} for ``from module import ...``."""
    names = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for item in node.names:
                names[item.asname or item.name] = item.name
    return names


def _is_path_part(path: str, part: str) -> bool:
    normalized = path.replace("\\", "/")
    return f"/{part}/" in normalized or normalized.startswith(f"{part}/")


class Rule:
    """Base: applies everywhere unless a subclass narrows the scope."""

    code = "RPL000"
    name = "base"

    def applies_to(self, path: str) -> bool:
        return True

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, path: str, node: ast.AST,
                message: str) -> Finding:
        return Finding(self.code, path, node.lineno, node.col_offset,
                       message)


class WallClockRule(Rule):
    """RPL001: wall-clock reads/sleeps in simulation code."""

    code = "RPL001"
    name = "wall-clock-in-sim"
    #: Directory names exempt from this rule (the execution harness
    #: legitimately measures host time).
    exempt_parts = ("exec",)

    def applies_to(self, path: str) -> bool:
        return not any(_is_path_part(path, part)
                       for part in self.exempt_parts)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        time_aliases = _module_aliases(tree, "time")
        datetime_aliases = _module_aliases(tree, "datetime")
        datetime_classes = {
            local for local, orig in _from_imports(tree, "datetime").items()
            if orig in ("datetime", "date")}
        for local, orig in _from_imports(tree, "time").items():
            if orig in _WALL_CLOCK_TIME:
                node = self._import_node(tree, "time")
                yield self.finding(
                    path, node,
                    f"wall-clock import 'from time import {orig}' in "
                    f"simulation code; use virtual time (kernel.now)")
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            if (isinstance(base, ast.Name)
                    and base.id in time_aliases
                    and func.attr in _WALL_CLOCK_TIME):
                yield self.finding(
                    path, node,
                    f"wall-clock call time.{func.attr}() in simulation "
                    f"code; use virtual time (kernel.now) or "
                    f"time.perf_counter() for harness timing")
            elif func.attr in _WALL_CLOCK_DATETIME and isinstance(
                    base, (ast.Name, ast.Attribute)):
                root = base
                while isinstance(root, ast.Attribute):
                    root = root.value
                if (isinstance(root, ast.Name)
                        and (root.id in datetime_aliases
                             or root.id in datetime_classes)):
                    yield self.finding(
                        path, node,
                        f"wall-clock call {ast.unparse(func)}() in "
                        f"simulation code; use virtual time")

    @staticmethod
    def _import_node(tree: ast.Module, module: str) -> ast.AST:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == module:
                return node
        return tree.body[0] if tree.body else tree


class GlobalRandomRule(Rule):
    """RPL002: process-global randomness instead of seeded streams."""

    code = "RPL002"
    name = "global-randomness"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        random_aliases = _module_aliases(tree, "random")
        os_aliases = _module_aliases(tree, "os")
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for item in node.names:
                        if item.name != "Random":
                            yield self.finding(
                                path, node,
                                f"'from random import {item.name}' uses "
                                f"the global RNG; draw from a seeded "
                                f"random.Random stream (kernel.rng)")
                elif node.module == "secrets":
                    yield self.finding(
                        path, node,
                        "'secrets' is entropy by definition; simulation "
                        "code must be deterministic")
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            if not isinstance(base, ast.Name):
                continue
            if (base.id in random_aliases
                    and func.attr in _GLOBAL_RANDOM):
                yield self.finding(
                    path, node,
                    f"global-RNG call random.{func.attr}() is "
                    f"nondeterministic across runs; draw from a seeded "
                    f"random.Random stream (kernel.rng)")
            elif base.id in os_aliases and func.attr == "urandom":
                yield self.finding(
                    path, node,
                    "os.urandom() is entropy; simulation code must be "
                    "deterministic")


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Descendants whose nearest enclosing function is ``func`` (the
    walk does not descend into nested function definitions)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue  # nested scope: its body belongs to it
        stack.extend(ast.iter_child_nodes(node))


def _is_generator(func: ast.AST) -> bool:
    """Does this function contain a yield of its own?"""
    return any(isinstance(node, (ast.Yield, ast.YieldFrom))
               for node in _own_nodes(func))


class DiscardedSyscallRule(Rule):
    """RPL003/RPL004: a blocking syscall constructed then thrown away."""

    code = "RPL003"
    name = "discarded-syscall"
    sibling_code = "RPL004"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            is_gen = _is_generator(func)
            for stmt in _own_nodes(func):
                if not isinstance(stmt, ast.Expr):
                    continue
                call = stmt.value
                if not isinstance(call, ast.Call):
                    continue
                label = self._syscall_label(call)
                if label is None:
                    continue
                if is_gen:
                    yield Finding(
                        self.code, path, stmt.lineno, stmt.col_offset,
                        f"syscall {label} constructed but never yielded "
                        f"(forgotten 'yield'? the block/delay silently "
                        f"does not happen)")
                else:
                    yield Finding(
                        self.sibling_code, path, stmt.lineno,
                        stmt.col_offset,
                        f"blocking syscall {label} in a non-generator "
                        f"function; kernel blocking operations belong "
                        f"in process bodies (generators)")

    @staticmethod
    def _syscall_label(call: ast.Call):
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in _SYSCALL_METHODS:
                return f".{func.attr}(...)"
        elif isinstance(func, ast.Name):
            if func.id in _SYSCALL_NAMES:
                return f"{func.id}(...)"
        return None


class BlockingSyscallRule(DiscardedSyscallRule):
    """RPL004 registration stub: findings are produced by RPL003's
    visitor (one pass classifies by generator-ness); this class exists
    so ``--select RPL004`` and the rule listing know the code."""

    code = "RPL004"
    name = "syscall-outside-process"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        return iter(())


class FingerprintSafetyRule(Rule):
    """RPL005: config-dataclass fields the fingerprint cannot encode
    stably."""

    code = "RPL005"
    name = "fingerprint-unsafe-config-field"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        local_dataclasses = {
            node.name for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
            and self._is_dataclass(node)}
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Config"):
                continue
            if not self._is_dataclass(node):
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                if not isinstance(stmt.target, ast.Name):
                    continue
                reason = self._unsafe_reason(stmt.annotation,
                                             local_dataclasses)
                if reason is not None:
                    yield self.finding(
                        path, stmt,
                        f"field '{stmt.target.id}' of {node.name} is "
                        f"{reason}; the exec-cache fingerprint falls "
                        f"back to repr() for it, so equal configs may "
                        f"stop hashing equally "
                        f"(see repro.exec.fingerprint)")

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator
            if isinstance(target, ast.Call):
                target = target.func
            name = None
            if isinstance(target, ast.Attribute):
                name = target.attr
            elif isinstance(target, ast.Name):
                name = target.id
            if name == "dataclass":
                return True
        return False

    def _unsafe_reason(self, annotation: ast.AST,
                       local_dataclasses: Set[str]):
        head = self._head_name(annotation)
        if head is None:
            return None  # unrecognizable: give the benefit of the doubt
        if head in _UNSAFE_ANNOTATIONS:
            return (f"typed '{head}' (unordered or unencodable)")
        if head in _SAFE_ANNOTATIONS:
            if isinstance(annotation, ast.Subscript):
                for inner in self._subscript_args(annotation):
                    reason = self._unsafe_reason(inner, local_dataclasses)
                    if reason is not None:
                        return reason
            return None
        if head in local_dataclasses or head.endswith(("Config",
                                                       "Model",
                                                       "Plan")):
            return None  # nested config dataclass: encoded recursively
        return (f"typed '{head}', which the canonical encoder does not "
                f"know (not a primitive, container, or config "
                f"dataclass)")

    @staticmethod
    def _head_name(annotation: ast.AST):
        node = annotation
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Constant):
            if node.value is None:
                return "None"
            if isinstance(node.value, str):
                try:
                    parsed = ast.parse(node.value, mode="eval")
                except SyntaxError:
                    return None
                return FingerprintSafetyRule._head_name(parsed.body)
        return None

    @staticmethod
    def _subscript_args(node: ast.Subscript) -> List[ast.AST]:
        inner = node.slice
        if isinstance(inner, ast.Tuple):
            return list(inner.elts)
        return [inner]


class MutableDefaultRule(Rule):
    """RPL006: mutable default argument values."""

    code = "RPL006"
    name = "mutable-default-argument"

    _MUTABLE_CALLS = {"list", "dict", "set", "defaultdict",
                      "OrderedDict", "Counter", "deque", "bytearray"}

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            defaults = list(func.args.defaults) + [
                default for default in func.args.kw_defaults
                if default is not None]
            for default in defaults:
                label = self._mutable_label(default)
                if label is not None:
                    yield self.finding(
                        path, default,
                        f"mutable default argument {label} is evaluated "
                        f"once and shared across calls; default to None "
                        f"and create inside the function")

    def _mutable_label(self, node: ast.AST):
        if isinstance(node, (ast.List, ast.ListComp)):
            return "[...]"
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return "{...}"
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "{...} (set)"
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in self._MUTABLE_CALLS:
                return f"{name}(...)"
        return None


class AdHocTraceOutputRule(Rule):
    """RPL007: print()/logging in protocol or distributed modules.

    Those layers have a structured observability channel — the
    :class:`repro.trace.tracer.Tracer` — and ad-hoc output breaks it
    twice over: ``print`` corrupts the CLI's machine-readable tables,
    and the ``logging`` module consults process-global mutable
    configuration (handlers, levels), so two runs of one fingerprint
    can behave differently.  Emit typed Tracer events instead.
    """

    code = "RPL007"
    name = "ad-hoc-trace-output"
    #: Directory names this rule patrols (the protocol + dist layers).
    scoped_parts = ("cc", "dist")

    def applies_to(self, path: str) -> bool:
        if _is_path_part(path, "tests"):
            return False
        return any(_is_path_part(path, part)
                   for part in self.scoped_parts)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if (item.name == "logging"
                            or item.name.startswith("logging.")):
                        yield self.finding(
                            path, node,
                            "protocol/dist modules must not use the "
                            "logging module (process-global mutable "
                            "state); emit structured Tracer events "
                            "(repro.trace)")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "logging" or (
                        node.module is not None
                        and node.module.startswith("logging.")):
                    yield self.finding(
                        path, node,
                        "protocol/dist modules must not import from "
                        "logging; emit structured Tracer events "
                        "(repro.trace)")
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id == "print":
                    yield self.finding(
                        path, node,
                        "print() in a protocol/dist module corrupts "
                        "the CLI's output contract; emit structured "
                        "Tracer events (repro.trace)")


def _not_none_guards(test: ast.AST) -> Set[str]:
    """Expressions proven non-None when ``test`` is true."""
    guards: Set[str] = set()
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        for value in test.values:
            guards |= _not_none_guards(value)
    elif (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], ast.IsNot)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None):
        guards.add(ast.unparse(test.left))
    return guards


def _none_guards(test: ast.AST) -> Set[str]:
    """Expressions proven non-None when ``test`` is FALSE (``X is
    None`` tests: the else branch / fallthrough has X non-None)."""
    guards: Set[str] = set()
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        for value in test.values:
            guards |= _none_guards(value)
    elif (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None):
        guards.add(ast.unparse(test.left))
    return guards


class UnguardedTracerRule(Rule):
    """RPL008: tracer event emitted without an ``is not None`` guard.

    The observability contract of the hot layers is *zero cost when
    tracing is off*: components store the ambient tracer (or None) at
    construction and every hook site must be a single ``is not None``
    test before any event-argument construction.  An unguarded
    ``<x>.tracer.<event>(...)`` either crashes on None or — worse —
    forces a tracer to exist, making every run pay event-building cost.
    The rule tracks guard scopes lexically: ``if t is not None:``
    bodies, ``and``-chains, ternaries, and early-return ``if t is
    None:`` blocks all count.
    """

    code = "RPL008"
    name = "unguarded-tracer-call"
    #: Directory names this rule patrols (the hot simulation layers).
    scoped_parts = ("cc", "dist", "kernel")

    def applies_to(self, path: str) -> bool:
        if _is_path_part(path, "tests"):
            return False
        return any(_is_path_part(path, part)
                   for part in self.scoped_parts)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        findings: List[Finding] = []
        self._scan_block(tree.body, set(), path, findings)
        return iter(findings)

    # -- statement walk, threading the guarded-expression set ----------
    def _scan_block(self, stmts, guarded: Set[str], path: str,
                    findings: List[Finding]) -> None:
        guarded = set(guarded)
        for stmt in stmts:
            self._scan_stmt(stmt, guarded, path, findings)
            if (isinstance(stmt, ast.If) and not stmt.orelse
                    and stmt.body
                    and isinstance(stmt.body[-1],
                                   (ast.Return, ast.Raise,
                                    ast.Continue, ast.Break))):
                # `if x is None: return` — x is non-None below.
                guarded |= _none_guards(stmt.test)

    def _scan_stmt(self, stmt, guarded: Set[str], path: str,
                   findings: List[Finding]) -> None:
        if isinstance(stmt, ast.If):
            self._scan_expr(stmt.test, guarded, path, findings)
            self._scan_block(stmt.body,
                             guarded | _not_none_guards(stmt.test),
                             path, findings)
            self._scan_block(stmt.orelse,
                             guarded | _none_guards(stmt.test),
                             path, findings)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            # Deferred (or new) scope: outer guards do not hold inside.
            self._scan_block(stmt.body, set(), path, findings)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, guarded, path, findings)
            self._scan_block(stmt.body, guarded, path, findings)
            self._scan_block(stmt.orelse, guarded, path, findings)
        elif isinstance(stmt, ast.While):
            self._scan_expr(stmt.test, guarded, path, findings)
            self._scan_block(stmt.body,
                             guarded | _not_none_guards(stmt.test),
                             path, findings)
            self._scan_block(stmt.orelse, guarded, path, findings)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(item.context_expr, guarded, path,
                                findings)
            self._scan_block(stmt.body, guarded, path, findings)
        elif isinstance(stmt, ast.Try):
            self._scan_block(stmt.body, guarded, path, findings)
            for handler in stmt.handlers:
                self._scan_block(handler.body, guarded, path, findings)
            self._scan_block(stmt.orelse, guarded, path, findings)
            self._scan_block(stmt.finalbody, guarded, path, findings)
        else:
            self._scan_expr(stmt, guarded, path, findings)

    # -- expression walk (guard-aware for `and` chains and ternaries) --
    def _scan_expr(self, node, guarded: Set[str], path: str,
                   findings: List[Finding]) -> None:
        if node is None:
            return
        if isinstance(node, ast.IfExp):
            self._scan_expr(node.test, guarded, path, findings)
            self._scan_expr(node.body,
                            guarded | _not_none_guards(node.test),
                            path, findings)
            self._scan_expr(node.orelse,
                            guarded | _none_guards(node.test),
                            path, findings)
            return
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            accumulated = set(guarded)
            for value in node.values:
                self._scan_expr(value, accumulated, path, findings)
                accumulated |= _not_none_guards(value)
            return
        if isinstance(node, ast.Call) and isinstance(node.func,
                                                     ast.Attribute):
            key = self._tracer_key(node.func.value)
            if key is not None and key not in guarded:
                findings.append(self.finding(
                    path, node,
                    f"tracer call {key}.{node.func.attr}(...) outside "
                    f"an 'if {key} is not None:' guard; trace hooks in "
                    f"hot layers must be zero-cost when tracing is off"))
        for child in ast.iter_child_nodes(node):
            self._scan_expr(child, guarded, path, findings)

    @staticmethod
    def _tracer_key(base: ast.AST):
        """Canonical key if ``base`` looks like a tracer reference."""
        if isinstance(base, ast.Name):
            if base.id == "tracer" or base.id.endswith("_tracer"):
                return base.id
        elif isinstance(base, ast.Attribute):
            if base.attr == "tracer" or base.attr.endswith("_tracer"):
                return ast.unparse(base)
        return None


class BlockingTaxonomyRule(Rule):
    """RPL009: blocking-category string literal re-declared in a layer
    that must source the taxonomy from :mod:`repro.constants`.

    Flags any string constant spelled exactly like one of the
    :data:`repro.constants.BLOCKING_CATEGORIES` names inside the
    protocol, trace or model layers.  Those layers classify, measure
    and predict the *same* categories; the only way the three stay
    interchangeable is if every occurrence references the shared
    constant instead of respelling it.
    """

    code = "RPL009"
    name = "blocking-category-literal"
    #: Directory names this rule patrols (the layers sharing the
    #: blocking taxonomy).
    scoped_parts = ("model", "trace", "cc")

    def applies_to(self, path: str) -> bool:
        if _is_path_part(path, "tests"):
            return False
        return any(_is_path_part(path, part)
                   for part in self.scoped_parts)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Constant):
                continue
            if not isinstance(node.value, str):
                continue
            if node.value not in BLOCKING_CATEGORIES:
                continue
            yield self.finding(
                path, node,
                f"blocking-category literal {node.value!r} re-declared; "
                f"use the shared constant BLOCKING_"
                f"{node.value.upper()} from repro.constants so the "
                f"protocol, trace and model layers cannot drift")


class ProtocolLiteralRule(Rule):
    """RPL013: hard-coded protocol-name literal outside the registry.

    The protocol set lives in :mod:`repro.protocols`; each plugin spec
    declares its family, model family, checker and aliases, so any
    module that branches on — or re-declares a set of — protocol name
    literals will silently miss protocols registered later.  Two
    shapes are flagged, the ones drift historically came from:

    - a comparison or membership test against protocol-name literals
      (``if protocol == "C"``, ``protocol in ("L", "P")``) — dispatch
      belongs on the registered spec's fields;
    - a module-level tuple/list made entirely of protocol names
      (``MY_PROTOCOLS = ("C", "Cx")``) — protocol sets must be
      registry queries (``REGISTRY.model_family_names(...)`` etc.).

    Only canonical registry names are matched (aliases like
    ``ceiling`` double as ordinary words).  A class-level ``name``
    attribute (a protocol implementation identifying itself) and
    per-figure cast defaults in function signatures are deliberate
    and not flagged.
    """

    code = "RPL013"
    name = "protocol-name-literal"
    #: Directory names this rule patrols: every layer that consumes
    #: protocols (their home package, repro/protocols, is the one
    #: place allowed to spell the names).
    scoped_parts = ("cc", "dist", "model", "bench")

    def applies_to(self, path: str) -> bool:
        if _is_path_part(path, "tests"):
            return False
        if _is_path_part(path, "protocols"):
            return False
        return any(_is_path_part(path, part)
                   for part in self.scoped_parts)

    @staticmethod
    def _protocol_names() -> set:
        # Imported lazily: the registry pulls in the cc package, which
        # this module must not need just to be importable.
        from ..protocols import REGISTRY
        return set(REGISTRY.names())

    @staticmethod
    def _name_literals(node: ast.AST, names: set) -> list:
        """Protocol-name constants in ``node``: the node itself, or
        every element of a homogeneous tuple/list/set of them (a
        mixed container is not a protocol set)."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str) and node.value in names:
                return [node]
            return []
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            elements = node.elts
            if not elements:
                return []
            for element in elements:
                if not (isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                        and element.value in names):
                    return []
            return list(elements)
        return []

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        names = self._protocol_names()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            for side in [node.left] + list(node.comparators):
                for literal in self._name_literals(side, names):
                    yield self.finding(
                        path, literal,
                        f"protocol name {literal.value!r} tested "
                        f"against a literal; dispatch on the "
                        f"registered spec's fields "
                        f"(repro.protocols.REGISTRY) instead")
        for statement in tree.body:
            value = None
            if isinstance(statement, ast.Assign):
                value = statement.value
            elif isinstance(statement, ast.AnnAssign):
                value = statement.value
            if not isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                continue
            literals = self._name_literals(value, names)
            if literals:
                yield self.finding(
                    path, value,
                    "protocol set re-declared as literals; derive it "
                    "from a repro.protocols.REGISTRY query so newly "
                    "registered protocols are never missed")


class HostClockGatewayRule(Rule):
    """RPL014: direct host-clock call outside the sanctioned gateway.

    RPL001 already bans wall-clock *absolute* time in simulation code
    but deliberately allows ``time.perf_counter()`` / ``monotonic()``
    for harness timing.  In the determinism-critical layers — ``cc``,
    ``dist``, ``kernel`` and ``telemetry`` — even elapsed host time
    must flow through one audited helper,
    :func:`repro.telemetry.hostclock.host_clock`, so a reviewer can
    find every host-time read in those layers with a single grep and
    the metrics artifacts can never silently mix host and simulated
    timestamps.  Both the call forms (``time.perf_counter()``) and the
    from-imports (``from time import perf_counter``) are flagged; the
    gateway module itself is exempt.
    """

    code = "RPL014"
    name = "host-clock-outside-gateway"
    #: Directory names this rule patrols.
    scoped_parts = ("cc", "dist", "kernel", "telemetry")
    #: Module basenames allowed to touch the host clock directly.
    gateway_modules = ("hostclock.py",)
    #: Everything on the ``time`` module that reads a host clock.
    banned = (_WALL_CLOCK_TIME
              | {"perf_counter", "perf_counter_ns", "monotonic",
                 "monotonic_ns", "process_time", "process_time_ns"})

    def applies_to(self, path: str) -> bool:
        if _is_path_part(path, "tests"):
            return False
        normalized = path.replace("\\", "/")
        if normalized.rsplit("/", 1)[-1] in self.gateway_modules:
            return False
        return any(_is_path_part(path, part)
                   for part in self.scoped_parts)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        time_aliases = _module_aliases(tree, "time")
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for item in node.names:
                    if item.name in self.banned:
                        yield self.finding(
                            path, node,
                            f"'from time import {item.name}' in a "
                            f"determinism-critical layer; route host "
                            f"timing through repro.telemetry.hostclock"
                            f".host_clock()")
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in time_aliases
                    and func.attr in self.banned):
                yield self.finding(
                    path, node,
                    f"direct host-clock call time.{func.attr}() in a "
                    f"determinism-critical layer; route host timing "
                    f"through repro.telemetry.hostclock.host_clock()")


class EventQueueInternalsRule(Rule):
    """RPL015: event-queue internals reached outside the queue engines.

    The repository ships two event cores behind one queue API — the
    reference tuple heap (``kernel/events.py``) and the turbo calendar
    (``kernel/turbo/``) — and promises bitwise-identical results
    across them.  That promise dies the moment model or harness code
    reaches into one engine's representation (``events._heap``,
    ``events._drain``, dead-entry counters): such code silently breaks
    on — or worse, silently diverges under — the other engine.  Every
    consumer must go through the sanctioned surface (``schedule``,
    ``pop``, ``prepare_dispatch``, ``note_dead``, ``live_entries``,
    ``queue_stats``, ``pop_tied_entries``/``push_entry``).

    Flagged: an attribute read of a queue-internal name whose base
    expression looks like an event queue — a name or attribute spelled
    ``events``/``_events``/``queue`` (``events._heap``,
    ``self._events._dead``, ``kernel.events._buckets``).  Unrelated
    objects with fields like ``_seq`` (the wait-queue's arrival
    counter, transaction ids) are not flagged because their base is
    not queue-shaped.  The two engine homes are exempt, as are tests.
    """

    code = "RPL015"
    name = "event-queue-internals"
    #: Internal attributes of either engine's event structure.
    banned = frozenset({
        # reference tuple-heap internals
        "_heap", "_sorted",
        # turbo calendar internals
        "_buckets", "_bucket_heap", "_drain", "_spill", "_far",
        "_current_id", "_width", "_resize_at", "_freelist",
        # shared bookkeeping counters
        "_dead", "_seq", "_cancelled_total", "_count",
    })
    #: Base-expression spellings that identify an event queue.
    queue_names = frozenset({"events", "_events", "queue"})
    #: Module basenames allowed to touch reference-queue internals.
    engine_modules = ("events.py",)

    def applies_to(self, path: str) -> bool:
        if _is_path_part(path, "tests"):
            return False
        if _is_path_part(path, "turbo"):
            return False
        normalized = path.replace("\\", "/")
        return normalized.rsplit("/", 1)[-1] not in self.engine_modules

    def _queue_shaped(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.queue_names
        if isinstance(node, ast.Attribute):
            return node.attr in self.queue_names
        return False

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (isinstance(node, ast.Attribute)
                    and node.attr in self.banned
                    and self._queue_shaped(node.value)):
                yield self.finding(
                    path, node,
                    f"event-queue internal '.{node.attr}' accessed "
                    f"outside kernel/events.py and kernel/turbo/; use "
                    f"the queue API (prepare_dispatch/note_dead/"
                    f"live_entries/queue_stats/...) so both engines "
                    f"stay interchangeable")


#: The syntactic rule set, in code order.  The flow-aware rules
#: (RPL010-RPL012) live in :mod:`repro.analyze.flow_rules`; they are
#: appended below so the shipped registry stays one tuple.
_SYNTACTIC_RULES = (
    WallClockRule(),
    GlobalRandomRule(),
    DiscardedSyscallRule(),
    BlockingSyscallRule(),
    FingerprintSafetyRule(),
    MutableDefaultRule(),
    AdHocTraceOutputRule(),
    UnguardedTracerRule(),
    BlockingTaxonomyRule(),
    ProtocolLiteralRule(),
    HostClockGatewayRule(),
    EventQueueInternalsRule(),
)

#: code -> one-line description, for ``repro lint --list-rules``.
RULE_INDEX = {
    "RPL001": "wall-clock read or sleep in simulation code",
    "RPL002": "process-global randomness (random.*, os.urandom)",
    "RPL003": "kernel syscall constructed but never yielded",
    "RPL004": "blocking kernel syscall outside a process body",
    "RPL005": "fingerprint-unsafe config dataclass field",
    "RPL006": "mutable default argument",
    "RPL007": "print()/logging in protocol or dist modules",
    "RPL008": "tracer event call outside an 'is not None' guard",
    "RPL009": "re-declared blocking-category string literal",
    "RPL013": "hard-coded protocol-name literal outside the registry",
    "RPL014": "host-clock call outside the hostclock gateway",
    "RPL015": "event-queue internals accessed outside the engines",
}

# Imported at the bottom on purpose: flow_rules subclasses Rule from
# this module, so the import must run after the class definitions.
from .flow_rules import FLOW_RULES, FLOW_RULE_INDEX  # noqa: E402

DEFAULT_RULES = _SYNTACTIC_RULES + FLOW_RULES
RULE_INDEX.update(FLOW_RULE_INDEX)
