"""``python -m repro.analyze`` entry point."""

import sys

from .cli import main

sys.exit(main())
