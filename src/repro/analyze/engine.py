"""The static-lint engine: file discovery, rule dispatch, suppression.

The engine is deliberately tiny — it parses each file once, hands the
AST to every registered rule, and filters the resulting findings
through ``# noqa`` suppression comments:

- ``# noqa`` on a line suppresses every finding on that line;
- ``# noqa: RPL001`` (or a comma-separated list) suppresses only the
  named codes.

Rules are plain objects with a ``code``, a ``name``, and a
``check(tree, path) -> Iterable[Finding]`` method (see
:mod:`repro.analyze.rules`).  The engine knows nothing about what any
rule looks for, which keeps adding a rule a one-file change.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import re
from pathlib import Path
from typing import Any, Iterable, Iterator, List, Optional, Sequence

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?",
                      re.IGNORECASE)
#: Valid code tokens inside a noqa list ("RPL001"); anything else in
#: the captured span (trailing prose like "because reasons") is not a
#: code and must not end up in the suppression set.
_CODE_TOKEN_RE = re.compile(r"[A-Za-z]+\d+")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint violation, pointing at a source location."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def format_text(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.code} {self.message}")

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


def _suppressed_codes(source_line: str) -> Optional[frozenset]:
    """Codes suppressed on this line: frozenset() means *all* codes."""
    match = _NOQA_RE.search(source_line)
    if match is None:
        return None
    codes = match.group("codes")
    if codes is None:
        return frozenset()  # bare "# noqa": everything
    # Split on commas, then keep only well-formed code tokens: the
    # captured span is greedy enough to swallow trailing prose
    # ("# noqa: RPL001 because reasons"), which must suppress RPL001,
    # not look for a code named "RPL001 BECAUSE REASONS".
    tokens = []
    for part in codes.split(","):
        found = _CODE_TOKEN_RE.findall(part)
        if found:
            tokens.append(found[0].upper())
    return frozenset(tokens)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" in candidate.parts:
                    continue
                yield candidate
        elif path.suffix == ".py":
            yield path


class LintEngine:
    """Runs a rule set over source trees and collects findings."""

    def __init__(self, rules: Sequence[Any],
                 select: Optional[Iterable[str]] = None):
        selected = (None if select is None
                    else {code.upper() for code in select})
        self.rules = [rule for rule in rules
                      if selected is None or rule.code in selected]

    # ------------------------------------------------------------------
    def check_source(self, source: str, path: str) -> List[Finding]:
        """Lint one in-memory module; ``path`` labels the findings."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            line = error.lineno or 1
            col = (error.offset or 1) - 1
            return [Finding("RPL000", path, line, max(col, 0),
                            f"syntax error: {error.msg}")]
        findings: List[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(path):
                continue
            findings.extend(rule.check(tree, path))
        return self._apply_noqa(findings, source.splitlines())

    def check_file(self, path: Path) -> List[Finding]:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            return [Finding("RPL000", str(path), 1, 0,
                            f"unreadable file: {error}")]
        return self.check_source(source, str(path))

    def check_paths(self, paths: Sequence[Path]) -> List[Finding]:
        findings: List[Finding] = []
        for path in iter_python_files(paths):
            findings.extend(self.check_file(path))
        return sorted(findings,
                      key=lambda f: (f.path, f.line, f.col, f.code))

    # ------------------------------------------------------------------
    @staticmethod
    def _apply_noqa(findings: List[Finding],
                    lines: List[str]) -> List[Finding]:
        kept = []
        for finding in findings:
            index = finding.line - 1
            if 0 <= index < len(lines):
                suppressed = _suppressed_codes(lines[index])
                if suppressed is not None and (
                        not suppressed or finding.code in suppressed):
                    continue
            kept.append(finding)
        return kept


def render_text(findings: Sequence[Finding]) -> str:
    if not findings:
        return "no findings"
    body = "\n".join(finding.format_text() for finding in findings)
    noun = "finding" if len(findings) == 1 else "findings"
    return f"{body}\n{len(findings)} {noun}"


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps([finding.as_dict() for finding in findings],
                      indent=2, sort_keys=True)
