"""The protocol sanitizer: opt-in runtime invariant checking.

Activation (any of):

- environment — ``REPRO_SANITIZE=1`` (strict: the first violation
  raises :class:`SanitizerViolation`) or ``REPRO_SANITIZE=record``
  (collect violations, never raise);
- CLI — ``python -m repro <figure> --sanitize``;
- programmatic — ``with repro.analyze.sanitize() as s: ...`` or
  ``install_sanitizer(Sanitizer(strict=False))``.

When no sanitizer is active the instrumentation cost is one ``is not
None`` check per hook site: protocol constructors read the active
sanitizer once and store ``None``, so steady-state simulation code
never takes a branch into checker logic.

The sanitizer itself is a thin dispatcher: protocol instances attach a
per-instance checker (:class:`~repro.analyze.invariants.CeilingChecker`
for the ceiling protocols, ``TwoPhaseChecker`` for the 2PL family) and
replica catalogs attach a :class:`ReplicationChecker`.  Checkers report
:class:`~repro.analyze.invariants.Violation` records here; the
sanitizer stores them (and raises in strict mode).  Selection is
duck-typed on ``rw_ceiling`` so this module never imports the model
packages — ``repro.cc.base`` imports *us* at module load.
"""

from __future__ import annotations

import contextlib
import os
from typing import Dict, List, Optional

from .invariants import (CeilingChecker, ProtocolChecker,
                         ReplicationChecker, TwoPhaseChecker, Violation)

ENV_VAR = "REPRO_SANITIZE"


class SanitizerViolation(AssertionError):
    """Raised in strict mode the moment an invariant breaks.  An
    AssertionError subclass: a violation is always an implementation
    bug, never a run condition."""

    def __init__(self, violation: Violation):
        super().__init__(str(violation))
        self.violation = violation


class Sanitizer:
    """Collects invariant violations from attached checkers."""

    def __init__(self, strict: bool = True):
        self.strict = strict
        self.violations: List[Violation] = []

    # ------------------------------------------------------------------
    # attachment (called by instrumented constructors)
    # ------------------------------------------------------------------
    def attach_protocol(self, cc) -> ProtocolChecker:
        """Checker for a concurrency-control instance.

        Selection is registry-driven (the plugin declares its checker
        family), imported lazily so this module keeps its no-model-
        imports contract at load time.  Unregistered protocol objects
        (ad-hoc test doubles) fall back to duck typing: ceiling
        protocols expose ``rw_ceiling``.
        """
        family = None
        try:
            from ..protocols import REGISTRY
        except ImportError:  # pragma: no cover - partial installs
            pass
        else:
            family = REGISTRY.checker_family(getattr(cc, "name", None))
        if family == "ceiling":
            return CeilingChecker(self, cc)
        if family == "twopl":
            return TwoPhaseChecker(self, cc)
        if hasattr(cc, "rw_ceiling"):
            return CeilingChecker(self, cc)
        return TwoPhaseChecker(self, cc)

    def attach_catalog(self, catalog) -> ReplicationChecker:
        """Checker for a replica catalog's single-writer invariant."""
        return ReplicationChecker(self, catalog)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self, violation: Violation) -> None:
        self.violations.append(violation)
        if self.strict:
            raise SanitizerViolation(violation)

    @property
    def clean(self) -> bool:
        return not self.violations

    def by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        return counts

    def clear(self) -> None:
        self.violations.clear()

    def summary(self) -> str:
        if self.clean:
            return "sanitizer: no violations"
        counts = ", ".join(f"{code} x{count}"
                           for code, count in sorted(self.by_code()
                                                     .items()))
        lines = [f"sanitizer: {len(self.violations)} violation(s) "
                 f"({counts})"]
        lines.extend(f"  {violation}"
                     for violation in self.violations[:20])
        if len(self.violations) > 20:
            lines.append(f"  ... and {len(self.violations) - 20} more")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# activation
# ----------------------------------------------------------------------
_ACTIVE: Optional[Sanitizer] = None


def _from_env() -> Optional[Sanitizer]:
    value = os.environ.get(ENV_VAR, "").strip().lower()
    if value in ("", "0", "false", "no", "off"):
        return None
    return Sanitizer(strict=value != "record")


def current_sanitizer() -> Optional[Sanitizer]:
    """The active sanitizer, if any.

    An explicitly installed sanitizer wins; otherwise the environment
    is consulted and — when it asks for one — a process-wide instance
    is created on first use (so violations from every system built in
    this process aggregate in one place).
    """
    global _ACTIVE
    if _ACTIVE is None and ENV_VAR in os.environ:
        _ACTIVE = _from_env()
    return _ACTIVE


def install_sanitizer(sanitizer: Sanitizer) -> Sanitizer:
    """Make ``sanitizer`` the active one (overrides the environment)."""
    global _ACTIVE
    _ACTIVE = sanitizer
    return sanitizer


def uninstall_sanitizer() -> None:
    global _ACTIVE
    _ACTIVE = None


def sanitizer_enabled() -> bool:
    return current_sanitizer() is not None


@contextlib.contextmanager
def sanitize(strict: bool = True):
    """Scoped activation: systems built inside the block are checked.

        with sanitize(strict=False) as s:
            SingleSiteSystem(config).run()
        assert s.clean, s.summary()
    """
    global _ACTIVE
    previous = _ACTIVE
    sanitizer = Sanitizer(strict=strict)
    _ACTIVE = sanitizer
    try:
        yield sanitizer
    finally:
        _ACTIVE = previous
