"""Protocol invariant checkers — the sanitizer's double-entry books.

Each checker re-derives a protocol's contract from first principles —
its own active-set registry, its own ceiling computation, its own
compatibility rule, its own wait-for graph — and compares against what
the protocol actually did.  It deliberately does **not** call the
protocol's admission helpers (``_can_acquire``, ``_ceiling_barrier``):
if checker and protocol ever disagree, one of them has a bug, which is
exactly the signal we want (the same double-entry argument Brandenburg
makes for mechanically checking locking-protocol invariants,
arXiv:1909.09600).

This module imports nothing from the model packages (``repro.cc``,
``repro.db``, ``repro.txn``): the concurrency-control base class
imports the sanitizer at module load, so the dependency must point
one way only.  Protocol objects are duck-typed: a checker needs
``cc.locks`` (holders/locks_of), ``cc.kernel.now``, ``cc.name`` and,
for the ceiling checker, ``cc.exclusive_only`` plus transactions with
``tid``/``priority``/``read_set``/``write_set``/``access_set``.

Invariant codes reported (see DESIGN.md for the paper references):

- ``SAN-LOCK-RACE``   — two incompatible grants coexist on one object;
- ``SAN-2PL-PHASE``   — a lock granted after the transaction's first
  release (the two-phase property, all 2PL protocols);
- ``SAN-2PL-STRICT``  — a transaction committed while still holding
  locks (strict 2PL releases everything at commit);
- ``SAN-PCP-CEILING`` — a grant admitted a transaction whose priority
  does not exceed the highest rw-ceiling among locks held by others;
- ``SAN-PCP-BLOCK``   — a transaction blocked with neither a ceiling
  barrier nor a direct conflict justifying it;
- ``SAN-PCP-ONCE``    — a transaction ceiling-blocked by lower-priority
  holders more than once within one stable active set;
- ``SAN-PCP-DEADLOCK``— a direct lock-conflict wait cycle under the
  (deadlock-free by construction) priority ceiling protocol; ceiling
  barriers are excluded from the graph because dynamic ceilings can
  dissolve without any cycle member releasing;
- ``SAN-REP-WRITER``  — a secondary site originated an object version
  the primary has never seen (single-writer/multiple-reader, R2).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Set


@dataclasses.dataclass(frozen=True)
class Violation:
    """One invariant breach, with enough context to debug it."""

    code: str
    message: str
    protocol: Optional[str] = None
    txn: Optional[int] = None
    oid: Optional[int] = None
    site: Optional[int] = None
    time: Optional[float] = None

    def __str__(self) -> str:
        context = ", ".join(
            f"{key}={value}"
            for key, value in (("protocol", self.protocol),
                               ("txn", self.txn), ("oid", self.oid),
                               ("site", self.site), ("time", self.time))
            if value is not None)
        suffix = f" [{context}]" if context else ""
        return f"{self.code}: {self.message}{suffix}"

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


def _is_write(mode: object) -> bool:
    """Duck-typed LockMode test (the enum's value is 'write')."""
    return getattr(mode, "value", mode) == "write"


def _incompatible(held: object, requested: object) -> bool:
    """The checker's own compatibility rule: only read/read coexists."""
    return _is_write(held) or _is_write(requested)


class _WaitForGraph:
    """Waiter -> holders edges with cycle search; rebuilt per check, so
    there is no incremental state to get out of sync."""

    def __init__(self) -> None:
        self._edges: Dict[Any, Set[Any]] = {}

    def add(self, waiter: Any, holders) -> None:
        targets = self._edges.setdefault(waiter, set())
        for holder in holders:
            if holder is not waiter:
                targets.add(holder)

    def cycle_through(self, start: Any) -> Optional[List[Any]]:
        path: List[Any] = []
        on_path: Set[Any] = set()
        done: Set[Any] = set()

        def dfs(node: Any) -> Optional[List[Any]]:
            path.append(node)
            on_path.add(node)
            for successor in self._edges.get(node, ()):
                if successor is start:
                    return list(path)
                if successor in on_path or successor in done:
                    continue
                found = dfs(successor)
                if found is not None:
                    return found
            path.pop()
            on_path.discard(node)
            done.add(node)
            return None

        return dfs(start)


class ProtocolChecker:
    """Shared checks for every lock protocol: grant races and the
    two-phase property of strict 2PL (all shipped protocols hold locks
    to commit, including the ceiling protocol)."""

    def __init__(self, sanitizer, cc):
        self.sanitizer = sanitizer
        self.cc = cc
        #: Transactions that executed their release point and may not
        #: acquire again until they abort/restart or leave.
        self._shrunk: Set[Any] = set()
        # Watch the raw lock table too: a grant that bypasses the
        # protocol (state corruption) still gets race-checked.
        if getattr(cc.locks, "observer", None) is None:
            cc.locks.observer = self

    # -- context helpers -----------------------------------------------
    def _now(self) -> Optional[float]:
        kernel = getattr(self.cc, "kernel", None)
        return None if kernel is None else kernel.now

    def _report(self, code: str, message: str, txn=None,
                oid: Optional[int] = None) -> None:
        self.sanitizer.report(Violation(
            code=code, message=message,
            protocol=getattr(self.cc, "name", None),
            txn=getattr(txn, "tid", None), oid=oid, time=self._now()))

    # -- lifecycle hooks (called from repro.cc.base) ---------------------
    def on_register(self, txn) -> None:
        pass

    def on_deregister(self, txn) -> None:
        self._shrunk.discard(txn)

    def on_block(self, txn, oid: int, mode) -> None:
        pass

    def on_grant(self, txn, oid: int, mode, waited: bool) -> None:
        if txn in self._shrunk:
            self._report(
                "SAN-2PL-PHASE",
                f"transaction {txn.tid} acquired {mode} on object {oid} "
                f"after its first release — the two-phase property "
                f"('no lock after unlock') is broken",
                txn=txn, oid=oid)
            self._shrunk.discard(txn)  # report once per offence
        self._check_race(oid)

    def on_release_all(self, txn, freed) -> None:
        if freed:
            self._shrunk.add(txn)

    def on_abort(self, txn) -> None:
        # A deadlock victim restarts from scratch: fresh growing phase.
        self._shrunk.discard(txn)

    def on_commit(self, txn) -> None:
        held = self.cc.locks.locks_of(txn)
        if held:
            self._report(
                "SAN-2PL-STRICT",
                f"transaction {txn.tid} committed while still holding "
                f"locks on {sorted(held)} — strict 2PL releases "
                f"everything at commit",
                txn=txn, oid=min(held))
        self._shrunk.discard(txn)

    # -- lock-table observer (called from repro.db.locks) ----------------
    def on_table_grant(self, oid: int, owner, mode) -> None:
        self._check_race(oid)

    def on_table_release(self, oid: int, owner) -> None:
        pass

    # -- shared checks ---------------------------------------------------
    def _check_race(self, oid: int) -> None:
        holders = self.cc.locks.holders(oid)
        if len(holders) < 2:
            return
        modes = list(holders.values())
        for index, held in enumerate(modes):
            for other in modes[index + 1:]:
                if _incompatible(held, other):
                    holder_map = {getattr(t, "tid", t): str(m)
                                  for t, m in holders.items()}
                    self._report(
                        "SAN-LOCK-RACE",
                        f"incompatible grants coexist on object "
                        f"{oid}: {holder_map}",
                        oid=oid)
                    return


class TwoPhaseChecker(ProtocolChecker):
    """Protocols L / P / PI: the shared checks are the whole contract
    (deadlocks are legal there — the protocol detects and resolves
    them itself)."""


class CeilingChecker(ProtocolChecker):
    """Protocol C / Cx: everything TwoPhaseChecker does, plus the
    ceiling admission rule, block justification, blocked-at-most-once
    and deadlock freedom — computed from this checker's own registry of
    declared access sets, not the protocol's."""

    def __init__(self, sanitizer, cc):
        super().__init__(sanitizer, cc)
        #: Independent active-set registry (the protocol keeps its own).
        self._active: Set[Any] = set()
        #: Ceiling-blocking episodes per txn within the current epoch.
        self._episodes: Dict[Any, int] = {}

    # -- independent ceiling computation ---------------------------------
    def _declared_write(self, txn) -> frozenset:
        if getattr(self.cc, "exclusive_only", False):
            return txn.access_set
        return txn.write_set

    def _write_ceiling(self, oid: int) -> Optional[float]:
        priorities = [txn.priority for txn in self._active
                      if oid in self._declared_write(txn)]
        return max(priorities) if priorities else None

    def _absolute_ceiling(self, oid: int) -> Optional[float]:
        priorities = [txn.priority for txn in self._active
                      if oid in txn.access_set]
        return max(priorities) if priorities else None

    def _rw_ceiling(self, oid: int) -> Optional[float]:
        holders = self.cc.locks.holders(oid)
        if any(_is_write(mode) for mode in holders.values()):
            return self._absolute_ceiling(oid)
        return self._write_ceiling(oid)

    def _barrier(self, txn):
        """(ceiling, oid, holders) of the highest rw-ceiling among
        objects locked by transactions other than ``txn``."""
        best = best_oid = None
        for oid in list(self.cc.locks.locked_oids()):
            holders = self.cc.locks.holders(oid)
            if not any(holder is not txn for holder in holders):
                continue
            ceiling = self._rw_ceiling(oid)
            if ceiling is None:
                continue
            if best is None or ceiling > best:
                best, best_oid = ceiling, oid
        if best_oid is None:
            return None, None, []
        blocking = [holder
                    for holder in self.cc.locks.holders(best_oid)
                    if holder is not txn]
        return best, best_oid, blocking

    def _conflicters(self, txn, oid: int, mode) -> List[object]:
        return [holder
                for holder, held in self.cc.locks.holders(oid).items()
                if holder is not txn and _incompatible(held, mode)]

    # -- lifecycle hooks -------------------------------------------------
    def on_register(self, txn) -> None:
        self._active.add(txn)
        # The active set changed, so the static ceilings changed: the
        # blocked-at-most-once bound is only claimed within one epoch.
        self._episodes.clear()

    def on_deregister(self, txn) -> None:
        super().on_deregister(txn)
        self._active.discard(txn)
        self._episodes.clear()

    def on_grant(self, txn, oid: int, mode, waited: bool) -> None:
        super().on_grant(txn, oid, mode, waited)
        barrier, barrier_oid, __ = self._barrier(txn)
        if barrier is not None and txn.priority <= barrier:
            self._report(
                "SAN-PCP-CEILING",
                f"grant of {mode} on object {oid} to transaction "
                f"{txn.tid} (priority {txn.priority:g}) violates the "
                f"ceiling rule: object {barrier_oid} locked by others "
                f"carries rw-ceiling {barrier:g} >= its priority",
                txn=txn, oid=oid)

    def on_block(self, txn, oid: int, mode) -> None:
        barrier, barrier_oid, blocking = self._barrier(txn)
        conflicters = self._conflicters(txn, oid, mode)
        ceiling_blocked = barrier is not None and txn.priority <= barrier
        if not ceiling_blocked and not conflicters:
            self._report(
                "SAN-PCP-BLOCK",
                f"transaction {txn.tid} (priority {txn.priority:g}) was "
                f"blocked on object {oid} with no ceiling barrier and "
                f"no conflicting holder — spurious blocking",
                txn=txn, oid=oid)
            return
        blockers = blocking if ceiling_blocked else conflicters
        if blockers and all(holder.priority < txn.priority
                            for holder in blockers):
            count = self._episodes.get(txn, 0) + 1
            self._episodes[txn] = count
            if count > 1:
                blocker_tids = sorted(h.tid for h in blockers)
                self._report(
                    "SAN-PCP-ONCE",
                    f"transaction {txn.tid} was blocked by "
                    f"lower-priority holders {blocker_tids} "
                    f"(episode {count}) within one stable active set "
                    f"— PCP bounds blocking to one critical section",
                    txn=txn, oid=oid)
        self._check_deadlock(txn)

    # -- deadlock freedom ------------------------------------------------
    def _check_deadlock(self, txn) -> None:
        # Edges are *direct lock conflicts* only.  Ceiling-barrier
        # blocking is deliberately excluded: under this codebase's
        # open-arrival adaptation the ceilings are dynamic, so a
        # barrier can dissolve when an unrelated transaction
        # deregisters — a "cycle" through a barrier edge is not a
        # permanent wait.  Direct-conflict cycles, by contrast, are
        # provably impossible under the ceiling admission test (each
        # later acquirer would have been blocked by the ceiling its
        # own declared access contributes), so one appearing is
        # always an implementation bug.
        graph = _WaitForGraph()
        for request in list(getattr(self.cc, "waiting", ())):
            waiter = request.txn
            graph.add(waiter, self._conflicters(waiter, request.oid,
                                                request.mode))
        cycle = graph.cycle_through(txn)
        if cycle is not None:
            self._report(
                "SAN-PCP-DEADLOCK",
                f"wait-for cycle {[t.tid for t in cycle]} under the "
                f"priority ceiling protocol, which is deadlock-free by "
                f"construction",
                txn=txn)


class ReplicationChecker:
    """The replicated architecture's single-writer invariant (R2).

    Every version of an object is born at its primary site; secondary
    copies only ever install versions the primary already carries.  A
    ``record_write`` at a non-primary site with a timestamp newer than
    the primary's copy means a secondary originated data — the
    single-writer/multiple-reader restriction is broken.
    """

    def __init__(self, sanitizer, catalog):
        self.sanitizer = sanitizer
        self.catalog = catalog

    def on_record_write(self, site: int, oid: int,
                        timestamp: float) -> None:
        primary = self.catalog.primary_site(oid)
        if site == primary:
            return
        primary_ts = self.catalog.copy_timestamp(primary, oid)
        if timestamp > primary_ts:
            self.sanitizer.report(Violation(
                code="SAN-REP-WRITER",
                message=(f"site {site} recorded version "
                         f"{timestamp:g} of object {oid}, newer than "
                         f"its primary copy at site {primary} "
                         f"({primary_ts:g}) — a secondary originated "
                         f"an update (single-writer restriction R2)"),
                oid=oid, site=site, time=timestamp))
