"""Shared constant taxonomies used across otherwise-independent layers.

The blocking-time categories below are a cross-layer contract: the
protocols classify every lock block as it happens (:mod:`repro.cc`),
the trace layer decomposes measured response times into the same
buckets (:mod:`repro.trace.timeline`), and the analytic model predicts
per-category blocking (:mod:`repro.model.blocking`).  The three layers
must agree byte-for-byte — a drifted spelling would silently split one
category into two — so the names live here and lint rule RPL009 bans
re-declaring the string literals inside ``model/``, ``trace/`` or
``cc/``.
"""

#: Waiting on an incompatible lock holder.
BLOCKING_DIRECT = "direct"
#: Admission denied by the rw-ceiling test with no direct lock
#: conflict (the ceiling protocol's push-through cost).
BLOCKING_CEILING = "ceiling"
#: Request/reply time not explained by lock blocking (message transit,
#: remote queueing, server service).
BLOCKING_NETWORK = "network"
#: Everything else in the response time (CPU, I/O, local queueing).
BLOCKING_OTHER = "other"

#: The additive response-time decomposition, in presentation order:
#: direct + ceiling + network + other == response.
BLOCKING_CATEGORIES = (BLOCKING_DIRECT, BLOCKING_CEILING,
                       BLOCKING_NETWORK, BLOCKING_OTHER)
