"""repro — reproduction of Son & Chang (ICDCS 1990), "Performance
Evaluation of Real-Time Locking Protocols using a Distributed Software
Prototyping Environment".

The package rebuilds the paper's prototyping environment as a
deterministic discrete-event simulation library:

- :mod:`repro.kernel`    — StarLite-style concurrent kernel (processes,
  semaphores, ports, timers, deterministic RNG streams);
- :mod:`repro.resources` — preemptive-priority CPUs, parallel I/O;
- :mod:`repro.db`        — data objects, lock table, multiversion store,
  replica catalog;
- :mod:`repro.cc`        — the locking protocols: 2PL (L), 2PL with
  priority (P), priority inheritance (PI), priority ceiling (C), the
  exclusive-lock ceiling ablation (Cx), and the post-paper suite
  (mpcp, dpcp, fmlp);
- :mod:`repro.protocols` — the protocol plugin registry (names,
  aliases, families, config schemas, factories, fingerprints);
- :mod:`repro.txn`       — transactions, EDF priorities, workload
  generation, transaction managers, 2PC;
- :mod:`repro.dist`      — virtual sites, network, Message Servers, and
  the global-ceiling vs local-ceiling (replicated) architectures;
- :mod:`repro.core`      — configuration, system builders, the
  Performance Monitor, and the experiment/sweep runner.

Quickstart::

    from repro import SingleSiteConfig, SingleSiteSystem

    system = SingleSiteSystem(SingleSiteConfig(protocol="C"))
    monitor = system.run()
    print(monitor.percent_missed, monitor.throughput())
"""

from .cc import (MPCP, PROTOCOLS, DistributedPriorityCeiling,
                 FMLPQueueLock, PriorityCeiling, PriorityInheritance,
                 TwoPhaseLocking, TwoPhaseLockingPriority, make_protocol)
from .protocols import REGISTRY as PROTOCOL_REGISTRY
from .core import (DistributedConfig, PerformanceMonitor,
                   SingleSiteConfig, SingleSiteSystem, TimingConfig,
                   WorkloadConfig, compare_protocols, replicate,
                   replicate_many, run_distributed, run_single_site,
                   sweep)
from .dist import DistributedSystem
from .kernel import Kernel
from .txn import (CostModel, Transaction, TransactionSpec,
                  WorkloadGenerator)

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "DistributedConfig",
    "DistributedPriorityCeiling",
    "DistributedSystem",
    "FMLPQueueLock",
    "Kernel",
    "MPCP",
    "PROTOCOLS",
    "PROTOCOL_REGISTRY",
    "PerformanceMonitor",
    "PriorityCeiling",
    "PriorityInheritance",
    "SingleSiteConfig",
    "SingleSiteSystem",
    "TimingConfig",
    "Transaction",
    "TransactionSpec",
    "TwoPhaseLocking",
    "TwoPhaseLockingPriority",
    "WorkloadConfig",
    "WorkloadGenerator",
    "__version__",
    "compare_protocols",
    "make_protocol",
    "replicate",
    "replicate_many",
    "run_distributed",
    "run_single_site",
    "sweep",
]
