"""The MetricsRegistry: named instruments + lazy window sampling.

Design contract (tested in ``tests/telemetry``):

- **zero perturbation** — the registry never schedules kernel events,
  never draws randomness, and never mutates model state.  Sampling
  windows are closed *lazily*, driven by the instrument mutations
  themselves: every mutation calls :meth:`MetricsRegistry._tick` with
  the simulated time of the measured event, which closes any fully
  elapsed windows first.  A metrics-enabled run is therefore bitwise
  identical to a plain run (the golden-summary tests prove it both
  for a single-site and a distributed scenario).
- **fixed simulated-time windows** — instruments that changed during
  a window are sampled once at that window's end; untouched windows
  produce no points (consumers forward-fill).  The dirty set is an
  insertion-ordered dict so the sample order is deterministic, and
  :meth:`dump` additionally sorts series by (name, labels).
- **bounded, cheap instruments** — get-or-create by (name, labels);
  re-requesting an existing instrument with a different kind is a
  programming error and raises.

Activation mirrors :mod:`repro.trace.tracer`: components sample
:func:`current_metrics` once at construction and store ``None`` when
metering is off; every hook site costs one ``is not None`` test.
Install a registry *before* building a system — :func:`metering` is
the context manager, and the exec worker installs a fresh registry per
run unit when ``REPRO_METRICS_DIR`` is set.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Optional, Tuple

from .instruments import (Counter, Gauge, Histogram, Instrument,
                          LabelsArg, canonical_labels)

#: Default sampling-window width in *simulated* time units.
DEFAULT_WINDOW = 50.0

#: Exec-engine activation: when set, the worker installs a fresh
#: registry per run unit and writes ``<fingerprint>.metrics.jsonl``
#: artifacts into this directory (see :mod:`repro.exec.worker`).
ENV_METRICS_DIR = "REPRO_METRICS_DIR"

#: Optional override for the sampling-window width (a float, in
#: simulated time units), honored by the exec worker.
ENV_METRICS_WINDOW = "REPRO_METRICS_WINDOW"


class MetricsRegistry:
    """Holds the instruments of one run and samples them on windows."""

    def __init__(self, window: float = DEFAULT_WINDOW,
                 start: float = 0.0,
                 meta: Optional[dict] = None):
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self.window = float(window)
        self.meta: dict = dict(meta or {})
        self._instruments: Dict[Tuple[str, tuple], Instrument] = {}
        #: Instruments mutated in the currently open window, in first-
        #: mutation order (dict as ordered set — determinism matters).
        self._dirty: Dict[Instrument, None] = {}
        self._start = float(start)
        self._window_end = self._start + self.window
        self._last_tick = self._start
        self._finalized = False

    # ------------------------------------------------------------------
    # instrument factory
    # ------------------------------------------------------------------
    def _get(self, cls, name: str, help: str, labels: LabelsArg,
             **kwargs) -> Instrument:
        key = (name, canonical_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(self, name, help, labels, **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"instrument {name!r}{dict(key[1])!r} already registered "
                f"as {instrument.kind}, requested {cls.kind}")
        return instrument

    def counter(self, name: str, help: str = "",
                labels: LabelsArg = ()) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: LabelsArg = ()) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: LabelsArg = (),
                  bounds=None) -> Histogram:
        return self._get(Histogram, name, help, labels, bounds=bounds)

    # ------------------------------------------------------------------
    # windowing
    # ------------------------------------------------------------------
    def _tick(self, t: float) -> None:
        """Close elapsed windows before a mutation at simulated ``t``.

        All dirty instruments were last mutated strictly inside the
        window ending at ``self._window_end`` (any mutation at or past
        the boundary lands here first), so they are sampled at that
        boundary, and the open window jumps forward to cover ``t``.
        """
        if t > self._last_tick:
            self._last_tick = t
        if t < self._window_end:
            return
        boundary = self._window_end
        dirty = self._dirty
        if dirty:
            for instrument in dirty:
                instrument._sample(boundary)
            dirty.clear()
        window = self.window
        self._window_end = self._start + window * (
            (t - self._start) // window + 1.0)

    def finalize(self) -> None:
        """Close the final (partial) window at the last seen time."""
        if self._finalized:
            return
        self._finalized = True
        dirty = self._dirty
        if dirty:
            boundary = min(self._window_end, self._last_tick)
            for instrument in dirty:
                instrument._sample(boundary)
            dirty.clear()

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def dump(self) -> dict:
        """The registry as a plain-data document (see export module).

        Series are sorted by (name, labels) so the artifact is stable
        regardless of instrument creation order.
        """
        series = []
        for key in sorted(self._instruments):
            instrument = self._instruments[key]
            entry = {
                "name": instrument.name,
                "kind": instrument.kind,
                "help": instrument.help,
                "labels": dict(instrument.labels),
            }
            if isinstance(instrument, Histogram):
                entry["bounds"] = list(instrument.bounds)
                entry["points"] = [
                    {"t": t, "counts": list(counts),
                     "sum": total, "count": count}
                    for (t, counts, total, count) in instrument.samples]
                entry["final"] = {"counts": list(instrument.counts),
                                  "sum": instrument.sum,
                                  "count": instrument.count}
            else:
                entry["points"] = [[t, value]
                                   for (t, value) in instrument.samples]
                entry["final"] = instrument.value
            series.append(entry)
        meta = dict(self.meta)
        meta["window"] = self.window
        return {"meta": meta, "series": series}

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MetricsRegistry(instruments={len(self._instruments)}, "
                f"window={self.window}, last_tick={self._last_tick})")


# ----------------------------------------------------------------------
# activation
# ----------------------------------------------------------------------
_ACTIVE: Optional[MetricsRegistry] = None


def current_metrics() -> Optional[MetricsRegistry]:
    """The installed registry, or None when metering is off.

    Components sample this once at construction, so install a registry
    *before* building the system you want metered."""
    return _ACTIVE


def install_metrics(
        registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Make ``registry`` the active one (None turns metering off)."""
    global _ACTIVE
    _ACTIVE = registry
    return registry


@contextlib.contextmanager
def metering(registry: Optional[MetricsRegistry] = None):
    """``with metering() as m: ...`` — install (and restore) metrics."""
    active = registry if registry is not None else MetricsRegistry()
    previous = current_metrics()
    install_metrics(active)
    try:
        yield active
    finally:
        install_metrics(previous)
