"""Typed metric instruments: Counter, Gauge, log-bucketed Histogram.

Every instrument belongs to a :class:`~repro.telemetry.registry.
MetricsRegistry` and is identified by a name plus a sorted tuple of
``(key, value)`` label pairs.  Mutations carry the *simulated* time of
the event being measured; the registry uses it to close elapsed
sampling windows lazily (see ``MetricsRegistry._tick``), so the
instrument layer never schedules kernel events and never perturbs the
run it observes.

Each closed window in which an instrument changed yields one sample
point; windows with no activity yield nothing (consumers forward-fill
the previous value).  All state is plain floats and lists — no RNG,
no host clock, no hashing of unordered containers — so two identical
runs produce byte-identical sample streams.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Tuple, Union

LabelsArg = Union[Dict[str, str], Iterable[Tuple[str, str]]]
Labels = Tuple[Tuple[str, str], ...]


def canonical_labels(labels: LabelsArg = ()) -> Labels:
    """Labels as a sorted tuple of (key, value) string pairs."""
    if isinstance(labels, dict):
        items = labels.items()
    else:
        items = tuple(labels)
    return tuple(sorted((str(k), str(v)) for k, v in items))


def default_buckets(base: float = 0.5, growth: float = 2.0,
                    count: int = 16) -> Tuple[float, ...]:
    """Geometric (log-spaced) upper bounds: base, base*growth, ...

    The default covers 0.5 .. 16384 simulated time units — wide enough
    for lock hold times (~1) through end-to-end response times
    (~1000s) at the paper's scale.  An implicit +Inf bucket always
    terminates the series.
    """
    return tuple(base * growth ** i for i in range(count))


class Instrument:
    """Common core: identity, registry link, and the sample list."""

    kind = "untyped"
    __slots__ = ("name", "help", "labels", "_registry", "samples")

    def __init__(self, registry, name: str, help: str = "",
                 labels: LabelsArg = ()):
        self.name = name
        self.help = help
        self.labels = canonical_labels(labels)
        self._registry = registry
        #: Closed-window sample points, appended by the registry.
        self.samples: List[tuple] = []

    def key(self) -> Tuple[str, Labels]:
        return (self.name, self.labels)

    # The registry calls this when a window the instrument was dirty
    # in closes; ``t`` is the simulated-time window boundary.
    def _sample(self, t: float) -> None:
        raise NotImplementedError

    def _touch(self, t: float) -> None:
        registry = self._registry
        registry._tick(t)
        registry._dirty[self] = None


# The mutators below inline ``_touch``'s fast path (bump the last-seen
# time, close windows only at a boundary crossing, mark dirty): probe
# hooks fire once or more per simulated event, and the saved function
# calls are what keep the metered benchmarks inside the <=10% overhead
# gate (``repro bench --max-metrics-overhead``).

class Counter(Instrument):
    """Monotone event count (grants, retries, drops, ...)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, registry, name: str, help: str = "",
                 labels: LabelsArg = ()):
        super().__init__(registry, name, help, labels)
        self.value = 0.0

    def inc(self, t: float, amount: float = 1.0) -> None:
        registry = self._registry
        if t >= registry._window_end:
            registry._tick(t)
        elif t > registry._last_tick:
            registry._last_tick = t
        registry._dirty[self] = None
        self.value += amount

    def _sample(self, t: float) -> None:
        self.samples.append((t, self.value))


class Gauge(Instrument):
    """Instantaneous level (queue depth, in-flight messages, ...)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, registry, name: str, help: str = "",
                 labels: LabelsArg = ()):
        super().__init__(registry, name, help, labels)
        self.value = 0.0

    def set(self, t: float, value: float) -> None:
        registry = self._registry
        if t >= registry._window_end:
            registry._tick(t)
        elif t > registry._last_tick:
            registry._last_tick = t
        registry._dirty[self] = None
        self.value = float(value)

    def inc(self, t: float, amount: float = 1.0) -> None:
        registry = self._registry
        if t >= registry._window_end:
            registry._tick(t)
        elif t > registry._last_tick:
            registry._last_tick = t
        registry._dirty[self] = None
        self.value += amount

    def dec(self, t: float, amount: float = 1.0) -> None:
        registry = self._registry
        if t >= registry._window_end:
            registry._tick(t)
        elif t > registry._last_tick:
            registry._last_tick = t
        registry._dirty[self] = None
        self.value -= amount

    def _sample(self, t: float) -> None:
        self.samples.append((t, self.value))


class Histogram(Instrument):
    """Log-bucketed distribution (hold times, blocking times, ...).

    ``bounds`` are ascending upper bucket edges; observations above
    the last edge land in the implicit +Inf bucket.  Per-bucket counts
    are stored *non*-cumulative; exporters cumulate on the way out
    (the OpenMetrics ``le`` convention).
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, registry, name: str, help: str = "",
                 labels: LabelsArg = (),
                 bounds: Iterable[float] = None):
        super().__init__(registry, name, help, labels)
        edges = tuple(bounds) if bounds is not None else default_buckets()
        if list(edges) != sorted(edges):
            raise ValueError(f"histogram bounds must ascend: {edges!r}")
        self.bounds = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, t: float, value: float) -> None:
        registry = self._registry
        if t >= registry._window_end:
            registry._tick(t)
        elif t > registry._last_tick:
            registry._last_tick = t
        registry._dirty[self] = None
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def _sample(self, t: float) -> None:
        self.samples.append((t, tuple(self.counts), self.sum, self.count))
