"""``repro metrics`` — inspect per-run metrics artifacts.

    repro metrics summarize RUN.metrics.jsonl [--json]
    repro metrics export RUN.metrics.jsonl -o RUN.prom
        [--format openmetrics|csv|json]
    repro metrics diff LEFT.metrics.jsonl RIGHT.metrics.jsonl
    repro metrics validate RUN.prom

``summarize`` prints the per-series table (kind, point count, final
value); ``export`` renders an artifact as OpenMetrics exposition text,
CSV, or pretty JSON; ``diff`` compares two artifacts series-by-series
(exit 1 on any difference — the determinism check); ``validate``
grammar-checks an OpenMetrics page.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .export import (diff_documents, load_metrics_jsonl, summarize_rows,
                     summary_text, to_csv, to_json, to_openmetrics,
                     validate_openmetrics)

_FORMATS = {"openmetrics": to_openmetrics, "csv": to_csv,
            "json": to_json}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro metrics",
        description="Summarize, export, diff and validate metrics "
                    "artifacts.")
    sub = parser.add_subparsers(dest="action")

    summarize = sub.add_parser(
        "summarize", help="per-series summary table")
    summarize.add_argument("artifact", help="*.metrics.jsonl artifact")
    summarize.add_argument("--json", action="store_true",
                           help="print summary rows as JSON")

    export = sub.add_parser(
        "export", help="render an artifact in an exchange format")
    export.add_argument("artifact", help="*.metrics.jsonl artifact")
    export.add_argument("-o", "--output", required=True,
                        help="destination path")
    export.add_argument("--format", choices=sorted(_FORMATS),
                        default="openmetrics")

    diff = sub.add_parser(
        "diff", help="compare two artifacts series-by-series")
    diff.add_argument("left", help="*.metrics.jsonl artifact")
    diff.add_argument("right", help="*.metrics.jsonl artifact")

    validate = sub.add_parser(
        "validate", help="grammar-check an OpenMetrics page")
    validate.add_argument("page", help="exported exposition text file")

    args = parser.parse_args(argv)
    if args.action is None:
        parser.print_help(sys.stderr)
        return 2
    try:
        if args.action == "summarize":
            document = load_metrics_jsonl(args.artifact)
            if args.json:
                print(json.dumps(summarize_rows(document),
                                 sort_keys=True))
            else:
                print(summary_text(document))
            return 0
        if args.action == "export":
            document = load_metrics_jsonl(args.artifact)
            rendered = _FORMATS[args.format](document)
            with open(args.output, "w", encoding="utf-8") as sink:
                sink.write(rendered)
            print(f"{args.output}: {len(document['series'])} series "
                  f"exported as {args.format}")
            return 0
        if args.action == "diff":
            left = load_metrics_jsonl(args.left)
            right = load_metrics_jsonl(args.right)
            problems = diff_documents(left, right)
            if problems:
                for problem in problems:
                    print(problem)
                return 1
            print(f"identical: {len(left['series'])} series match")
            return 0
        # validate
        with open(args.page, "r", encoding="utf-8") as stream:
            text = stream.read()
        problems = validate_openmetrics(text)
        if problems:
            for problem in problems[:20]:
                print(f"error: {problem}", file=sys.stderr)
            if len(problems) > 20:
                print(f"error: ... and {len(problems) - 20} more",
                      file=sys.stderr)
            return 1
        samples = sum(1 for line in text.splitlines()
                      if line and not line.startswith("#"))
        print(f"{args.page}: OK ({samples} samples)")
        return 0
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
