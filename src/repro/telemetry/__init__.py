"""repro.telemetry — deterministic time-series metrics.

A zero-RNG instrumentation layer sampled on fixed *simulated*-time
windows.  The layer honors the same contract as :mod:`repro.trace`:
installing a registry never perturbs the simulation (no events, no
RNG draws, no model-state mutation), so metrics-enabled runs stay
bitwise-identical to plain runs.

Public surface:

- :class:`MetricsRegistry` plus the activation trio
  (:func:`current_metrics` / :func:`install_metrics` /
  :func:`metering`) in :mod:`repro.telemetry.registry`;
- the typed instruments (Counter, Gauge, log-bucketed Histogram) in
  :mod:`repro.telemetry.instruments`;
- the guarded probes the hot layers call in
  :mod:`repro.telemetry.probes`;
- exporters (JSONL artifact, OpenMetrics/Prometheus text, CSV, JSON)
  and the exposition-format validator in
  :mod:`repro.telemetry.export`;
- the sanctioned host-clock helper in
  :mod:`repro.telemetry.hostclock` (the only place simulation-adjacent
  code may read the host clock — see lint rule RPL014).
"""

from .instruments import Counter, Gauge, Histogram
from .registry import (DEFAULT_WINDOW, ENV_METRICS_DIR,
                       ENV_METRICS_WINDOW, MetricsRegistry,
                       current_metrics, install_metrics, metering)

__all__ = [
    "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "current_metrics", "install_metrics", "metering",
    "DEFAULT_WINDOW", "ENV_METRICS_DIR", "ENV_METRICS_WINDOW",
]
