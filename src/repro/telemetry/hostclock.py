"""The sanctioned host-clock helper for simulation-adjacent code.

Lint rule RPL014 bans direct ``time.time()`` / ``time.perf_counter()``
calls in ``cc/``, ``dist/``, ``kernel/`` and ``telemetry/``: host time
leaking into those layers is exactly how determinism dies.  Code in
those layers that legitimately needs to measure *elapsed host* time
(overhead accounting, worker telemetry) must route through this
module — the single audited gateway, which deliberately exposes only a
monotonic elapsed-seconds reading and no absolute wall-clock.
"""

from __future__ import annotations

import time


def host_clock() -> float:
    """Monotonic host seconds for elapsed-time measurement.

    Never use the value in simulation state or fingerprinted output —
    it differs between hosts and runs by construction.
    """
    return time.perf_counter()  # noqa: RPL014 - the sanctioned gateway
