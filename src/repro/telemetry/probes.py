"""Guarded probes the hot layers drive when metering is on.

Each probe pre-creates its instruments at construction (so the hot
path never pays get-or-create hashing) and exposes tiny methods the
instrumented layers call behind ``is not None`` guards — the same
zero-cost-when-off contract the tracer honors (lint rule RPL008
enforces it for tracer calls).

None of the probes schedule events, draw randomness, read the host
clock, or mutate model state: they only move numbers into the
registry's instruments, stamped with simulated time.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..constants import BLOCKING_CEILING, BLOCKING_DIRECT
from .instruments import Counter, Gauge, Histogram
from .registry import MetricsRegistry


class KernelProbe:
    """Event-queue depth, dispatch rate, and timer churn.

    The kernel's run loops compare the current event time against
    :attr:`next_window` (one float comparison per event) and call
    :meth:`sample` only when a sampling window has elapsed — so the
    per-event overhead with metrics on stays within the bench gate.
    """

    __slots__ = ("_registry", "_events", "_depth", "_dispatched",
                 "_cancelled", "_seen_dispatched", "_seen_cancelled")

    def __init__(self, registry: MetricsRegistry, events):
        self._registry = registry
        self._events = events
        self._depth = registry.gauge(
            "kernel.queue_depth", "pending events in the kernel queue")
        self._dispatched = registry.counter(
            "kernel.events_dispatched", "events popped and dispatched")
        self._cancelled = registry.counter(
            "kernel.events_cancelled", "events cancelled (timer churn)")
        self._seen_dispatched = 0
        self._seen_cancelled = 0

    @property
    def next_window(self) -> float:
        return self._registry._window_end

    def sample(self, t: float) -> float:
        """Record queue statistics at ``t``; returns the next window
        boundary for the kernel to compare against."""
        live, dispatched, cancelled = self._events.queue_stats()
        self._depth.set(t, live)
        delta = dispatched - self._seen_dispatched
        if delta > 0:
            self._dispatched.inc(t, delta)
            self._seen_dispatched = dispatched
        delta = cancelled - self._seen_cancelled
        if delta > 0:
            self._cancelled.inc(t, delta)
            self._seen_cancelled = cancelled
        return self._registry._window_end


class CCProbe:
    """Lock-wait queue length, hold/blocking-time histograms, and
    ceiling-barrier occupancy for one concurrency-control instance."""

    __slots__ = ("_grants_immediate", "_grants_waited", "_blocks",
                 "_wait_queue", "_ceiling_blocked", "_wait_time",
                 "_hold_time", "_withdrawn", "_held_since", "_cause")

    def __init__(self, registry: MetricsRegistry, protocol: str,
                 site: Optional[int] = None):
        labels = {"protocol": protocol}
        if site is not None:
            labels["site"] = str(site)
        self._grants_immediate = registry.counter(
            "cc.grants", "lock grants", {**labels, "waited": "no"})
        self._grants_waited = registry.counter(
            "cc.grants", "lock grants", {**labels, "waited": "yes"})
        self._blocks = {
            cause: registry.counter(
                "cc.blocks", "lock requests blocked",
                {**labels, "cause": cause})
            for cause in (BLOCKING_DIRECT, BLOCKING_CEILING)}
        self._wait_queue = registry.gauge(
            "cc.wait_queue", "requests waiting for locks", labels)
        self._ceiling_blocked = registry.gauge(
            "cc.ceiling_blocked",
            "requests held at the ceiling barrier", labels)
        self._wait_time = registry.histogram(
            "cc.wait_time", "lock blocking time (simulated)", labels)
        self._hold_time = registry.histogram(
            "cc.hold_time", "lock hold time (simulated)", labels)
        self._withdrawn = registry.counter(
            "cc.withdrawn", "waiting requests withdrawn", labels)
        #: (tid, oid) -> grant time; drained on release.  Probe-private
        #: so protocol state carries no telemetry residue.
        self._held_since: Dict[Tuple[int, int], float] = {}
        #: request -> blocking cause, for the matching dequeue hook.
        #: Keyed by identity; never iterated, so no ordering leaks.
        self._cause: Dict[object, str] = {}

    def on_grant(self, t: float, txn, oid: int, waited: bool) -> None:
        if waited:
            self._grants_waited.inc(t)
        else:
            self._grants_immediate.inc(t)
        self._held_since.setdefault((txn.tid, oid), t)

    def on_block(self, t: float, request, cause: str) -> None:
        counter = self._blocks.get(cause)
        if counter is not None:
            counter.inc(t)
        self._wait_queue.inc(t)
        if cause == BLOCKING_CEILING:
            self._ceiling_blocked.inc(t)
        self._cause[request] = cause

    def on_unblock(self, t: float, request, waited: float) -> None:
        self._wait_queue.dec(t)
        if self._cause.pop(request, None) == BLOCKING_CEILING:
            self._ceiling_blocked.dec(t)
        self._wait_time.observe(t, waited)

    def on_withdraw(self, t: float, request) -> None:
        self._wait_queue.dec(t)
        if self._cause.pop(request, None) == BLOCKING_CEILING:
            self._ceiling_blocked.dec(t)
        self._withdrawn.inc(t)

    def on_release(self, t: float, txn, oids: Iterable[int]) -> None:
        held = self._held_since
        tid = txn.tid
        for oid in oids:
            since = held.pop((tid, oid), None)
            if since is not None:
                self._hold_time.observe(t, t - since)


class TxnProbe:
    """Active/blocked/committed/reneged transaction population."""

    __slots__ = ("_active", "_blocked", "_committed", "_restarts",
                 "_reneged", "_blocked_time")

    def __init__(self, registry: MetricsRegistry,
                 site: Optional[int] = None):
        labels = {} if site is None else {"site": str(site)}
        self._active = registry.gauge(
            "txn.active", "transactions between start and completion",
            labels)
        self._blocked = registry.gauge(
            "txn.blocked", "transactions blocked on a lock", labels)
        self._committed = registry.counter(
            "txn.committed", "committed transactions", labels)
        self._restarts = registry.counter(
            "txn.restarts", "deadlock-induced restarts", labels)
        self._reneged = registry.counter(
            "txn.reneged", "transactions that missed their deadline",
            labels)
        self._blocked_time = registry.histogram(
            "txn.blocked_time", "per-wait blocked time (simulated)",
            labels)

    def on_start(self, t: float) -> None:
        self._active.inc(t)

    def on_commit(self, t: float) -> None:
        self._active.dec(t)
        self._committed.inc(t)

    def on_restart(self, t: float) -> None:
        self._restarts.inc(t)

    def on_renege(self, t: float) -> None:
        self._active.dec(t)
        self._reneged.inc(t)

    def on_block(self, t: float) -> None:
        self._blocked.inc(t)

    def on_unblock(self, t: float, waited: float) -> None:
        self._blocked.dec(t)
        self._blocked_time.observe(t, waited)


class NetworkProbe:
    """In-flight messages per link, drops, and delivery delay."""

    __slots__ = ("_registry", "_in_flight", "_delay", "_dropped",
                 "_links")

    def __init__(self, registry: MetricsRegistry):
        self._registry = registry
        self._in_flight = registry.gauge(
            "net.in_flight", "message copies in flight")
        self._delay = registry.histogram(
            "net.delay", "delivery delay (simulated)")
        self._dropped = registry.counter(
            "net.dropped", "message copies dropped")
        #: "src->dst" -> per-link sent counter, created lazily (the
        #: link set depends only on the deterministic topology).
        self._links: Dict[str, Counter] = {}

    def on_send(self, t: float, src: int, dst: int) -> None:
        link = f"{src}->{dst}"
        counter = self._links.get(link)
        if counter is None:
            counter = self._registry.counter(
                "net.sent", "message copies sent per link",
                {"link": link})
            self._links[link] = counter
        counter.inc(t)
        self._in_flight.inc(t)

    def on_deliver(self, t: float, lag: float) -> None:
        self._in_flight.dec(t)
        self._delay.observe(t, lag)

    def on_drop(self, t: float, in_flight: bool = True) -> None:
        """A copy was lost — in flight (site down) or before takeoff
        (fault injector dropped every copy)."""
        if in_flight:
            self._in_flight.dec(t)
        self._dropped.inc(t)


class CommsProbe:
    """Retry/backoff accounting for the reliable-comms layer."""

    __slots__ = ("_timeouts", "_retries", "_stale",
                 "_courier_retries", "_courier_failures")

    def __init__(self, registry: MetricsRegistry):
        self._timeouts = registry.counter(
            "comms.timeouts", "rpc attempts that timed out")
        self._retries = registry.counter(
            "comms.retries", "rpc retries sent")
        self._stale = registry.counter(
            "comms.stale_replies", "replies arriving after resolution")
        self._courier_retries = registry.counter(
            "comms.courier_retries", "courier redelivery attempts")
        self._courier_failures = registry.counter(
            "comms.courier_failures", "courier deliveries abandoned")

    def on_timeout(self, t: float) -> None:
        self._timeouts.inc(t)

    def on_retry(self, t: float, count: int = 1) -> None:
        self._retries.inc(t, count)

    def on_stale(self, t: float) -> None:
        self._stale.inc(t)

    def on_courier_retry(self, t: float) -> None:
        self._courier_retries.inc(t)

    def on_courier_failure(self, t: float) -> None:
        self._courier_failures.inc(t)


class TwoPCProbe:
    """Per-phase two-phase-commit latency histograms."""

    __slots__ = ("_phases",)

    def __init__(self, registry: MetricsRegistry):
        self._phases: Dict[str, Histogram] = {
            phase: registry.histogram(
                "dist.two_pc_phase", "2PC phase latency (simulated)",
                {"phase": phase})
            for phase in ("prepare", "decide")}

    def on_phase(self, t: float, phase: str, elapsed: float) -> None:
        histogram = self._phases.get(phase)
        if histogram is not None:
            histogram.observe(t, elapsed)
