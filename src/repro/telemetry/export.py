"""Metrics exporters: JSONL artifacts, OpenMetrics, CSV and JSON.

- **JSONL** — one meta header line plus one series object per line;
  lossless round trip through :func:`load_metrics_jsonl` (the
  ``repro metrics`` subcommands operate on these artifacts).
- **OpenMetrics / Prometheus text** — the exposition format scrapers
  ingest: ``# HELP`` / ``# TYPE`` per family, ``_total``-suffixed
  counter samples, cumulative ``le``-labelled histogram buckets with a
  terminal ``+Inf``, escaped label values, ``# EOF`` trailer.  The
  exposition is a snapshot of each instrument's *final* state.
- **CSV** — the windowed time series flattened to rows for pandas or
  a spreadsheet; histogram points widen into sum/count/bucket rows.
- **JSON** — the registry document verbatim, sorted keys.

:func:`validate_openmetrics` is the grammar check CI runs against
every exported exposition (HELP/TYPE shape, sample syntax, label
escaping, bucket monotonicity, ``_count`` == ``+Inf`` bucket).
"""

from __future__ import annotations

import io
import json
import math
import re
from typing import Dict, List, Optional, Tuple

METRICS_VERSION = 1

#: OpenMetrics sample-name prefix; metric dots become underscores, so
#: ``cc.wait_time`` exposes as ``repro_cc_wait_time``.
OPENMETRICS_PREFIX = "repro_"

_TYPES = ("counter", "gauge", "histogram")


# ----------------------------------------------------------------------
# JSONL artifacts
# ----------------------------------------------------------------------
def write_metrics_jsonl(document: dict, destination: str) -> dict:
    """Write a registry :meth:`dump` document as JSONL; returns meta."""
    meta = dict(document.get("meta", {}))
    meta["metrics_version"] = METRICS_VERSION
    meta["series"] = len(document.get("series", []))
    with open(destination, "w", encoding="utf-8") as sink:
        sink.write(json.dumps({"meta": meta}, sort_keys=True) + "\n")
        for series in document.get("series", []):
            sink.write(json.dumps(series, sort_keys=True) + "\n")
    return meta


def load_metrics_jsonl(source: str) -> dict:
    """Read a JSONL artifact back into a registry-dump document."""
    meta: dict = {}
    series: List[dict] = []
    with open(source, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "meta" in record and "name" not in record:
                meta = record["meta"]
            else:
                series.append(record)
    return {"meta": meta, "series": series}


# ----------------------------------------------------------------------
# OpenMetrics / Prometheus exposition
# ----------------------------------------------------------------------
def metric_name(name: str) -> str:
    """Dotted instrument name -> exposition sample-family name."""
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    return OPENMETRICS_PREFIX + sanitized


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\"", "\\\"")
            .replace("\n", "\\n"))


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt_value(value) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_block(labels: Dict[str, str],
                 extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = sorted(labels.items())
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_escape_label(str(value))}"'
                     for key, value in pairs)
    return "{" + inner + "}"


def _cumulate(counts: List[float]) -> List[float]:
    out, running = [], 0.0
    for count in counts:
        running += count
        out.append(running)
    return out


def to_openmetrics(document: dict) -> str:
    """Render the final instrument states as an OpenMetrics page."""
    families: Dict[str, List[dict]] = {}
    order: List[str] = []
    for series in document.get("series", []):
        name = series["name"]
        if name not in families:
            families[name] = []
            order.append(name)
        families[name].append(series)
    out = io.StringIO()
    for name in sorted(order):
        members = families[name]
        family = metric_name(name)
        kind = members[0]["kind"]
        help_text = next((m["help"] for m in members if m.get("help")),
                         "")
        out.write(f"# HELP {family} {_escape_help(help_text)}\n")
        out.write(f"# TYPE {family} {kind}\n")
        for series in sorted(members,
                             key=lambda s: sorted(s["labels"].items())):
            labels = series["labels"]
            if kind == "counter":
                out.write(f"{family}_total{_label_block(labels)} "
                          f"{_fmt_value(series['final'])}\n")
            elif kind == "gauge":
                out.write(f"{family}{_label_block(labels)} "
                          f"{_fmt_value(series['final'])}\n")
            else:  # histogram
                final = series["final"]
                cumulative = _cumulate(final["counts"])
                edges = [*series["bounds"], float("inf")]
                for edge, running in zip(edges, cumulative):
                    block = _label_block(
                        labels, extra=("le", _fmt_value(edge)))
                    out.write(f"{family}_bucket{block} "
                              f"{_fmt_value(running)}\n")
                out.write(f"{family}_sum{_label_block(labels)} "
                          f"{_fmt_value(final['sum'])}\n")
                out.write(f"{family}_count{_label_block(labels)} "
                          f"{_fmt_value(final['count'])}\n")
    out.write("# EOF\n")
    return out.getvalue()


# ----------------------------------------------------------------------
# CSV / JSON
# ----------------------------------------------------------------------
def to_csv(document: dict) -> str:
    """Flatten the windowed series into ``name,kind,labels,t,field,
    value`` rows (histogram points widen into sum/count/le rows)."""
    out = io.StringIO()
    out.write("name,kind,labels,t,field,value\n")

    def row(series: dict, t, field: str, value) -> None:
        labels = ";".join(f"{k}={v}" for k, v
                          in sorted(series["labels"].items()))
        quoted = '"' + labels.replace('"', '""') + '"' if labels else ""
        out.write(f"{series['name']},{series['kind']},{quoted},"
                  f"{_fmt_value(t)},{field},{_fmt_value(value)}\n")

    for series in document.get("series", []):
        if series["kind"] == "histogram":
            edges = [*series["bounds"], float("inf")]
            for point in series["points"]:
                row(series, point["t"], "sum", point["sum"])
                row(series, point["t"], "count", point["count"])
                for edge, running in zip(edges,
                                         _cumulate(point["counts"])):
                    row(series, point["t"],
                        f"le_{_fmt_value(edge)}", running)
        else:
            for t, value in series["points"]:
                row(series, t, "value", value)
    return out.getvalue()


def to_json(document: dict) -> str:
    return json.dumps(document, sort_keys=True, indent=2)


# ----------------------------------------------------------------------
# OpenMetrics grammar validation
# ----------------------------------------------------------------------
_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_SAMPLE_RE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<ts>\S+))?\Z")
_LABELS_RE = re.compile(
    r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*")*\Z')
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\["\\n])*)"')

_SUFFIXES = {"histogram": ("_bucket", "_sum", "_count"),
             "counter": ("_total",)}


def _family_of(sample_name: str, types: Dict[str, str]) -> Optional[str]:
    """Match a sample name back to a declared family."""
    for family, kind in types.items():
        if kind == "gauge" and sample_name == family:
            return family
        for suffix in _SUFFIXES.get(kind, ()):
            if sample_name == family + suffix:
                return family
    return None


def _parse_value(text: str) -> Optional[float]:
    if text in ("+Inf", "-Inf"):
        return float(text.replace("Inf", "inf"))
    if text == "NaN":
        return float("nan")
    try:
        return float(text)
    except ValueError:
        return None


def validate_openmetrics(text: str) -> List[str]:
    """Grammar-check an exposition page; [] means valid."""
    problems: List[str] = []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        problems.append("missing terminal '# EOF' line")
    types: Dict[str, str] = {}
    helped: Dict[str, None] = {}
    sampled: Dict[str, None] = {}
    # family -> labels-sans-le -> list of (le, value) in document order
    buckets: Dict[str, Dict[tuple, List[Tuple[float, float]]]] = {}
    counts: Dict[str, Dict[tuple, float]] = {}
    for index, line in enumerate(lines):
        where = f"line {index + 1}"
        if line == "# EOF":
            if index != len(lines) - 1:
                problems.append(f"{where}: content after '# EOF'")
                break
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#" \
                    or parts[1] not in ("HELP", "TYPE"):
                problems.append(f"{where}: malformed comment {line!r}")
                continue
            family = parts[2]
            if not _NAME_RE.match(family):
                problems.append(f"{where}: bad metric name {family!r}")
                continue
            if parts[1] == "TYPE":
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in _TYPES:
                    problems.append(f"{where}: unknown type {kind!r}")
                elif family in types:
                    problems.append(f"{where}: duplicate TYPE for "
                                    f"{family}")
                elif family in sampled:
                    problems.append(f"{where}: TYPE for {family} after "
                                    f"its samples")
                else:
                    types[family] = kind
            else:
                if family in helped:
                    problems.append(f"{where}: duplicate HELP for "
                                    f"{family}")
                helped[family] = None
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"{where}: unparseable sample {line!r}")
            continue
        raw_labels = match.group("labels")
        label_map: Dict[str, str] = {}
        if raw_labels is not None:
            if raw_labels and not _LABELS_RE.match(raw_labels):
                problems.append(f"{where}: malformed labels "
                                f"{{{raw_labels}}}")
                continue
            for key, value in _LABEL_PAIR_RE.findall(raw_labels):
                if key in label_map:
                    problems.append(f"{where}: duplicate label {key!r}")
                label_map[key] = value
        value = _parse_value(match.group("value"))
        if value is None:
            problems.append(f"{where}: bad sample value "
                            f"{match.group('value')!r}")
            continue
        sample_name = match.group("name")
        family = _family_of(sample_name, types)
        if family is None:
            problems.append(f"{where}: sample {sample_name!r} has no "
                            f"matching TYPE declaration")
            continue
        sampled[family] = None
        kind = types[family]
        if kind == "histogram":
            key = tuple(sorted((k, v) for k, v in label_map.items()
                               if k != "le"))
            if sample_name == family + "_bucket":
                if "le" not in label_map:
                    problems.append(f"{where}: bucket without 'le'")
                    continue
                edge = _parse_value(label_map["le"])
                if edge is None:
                    problems.append(f"{where}: bad le "
                                    f"{label_map['le']!r}")
                    continue
                buckets.setdefault(family, {}).setdefault(
                    key, []).append((edge, value))
            elif sample_name == family + "_count":
                counts.setdefault(family, {})[key] = value
        elif kind == "counter" and value < 0:
            problems.append(f"{where}: negative counter value")
    for family, groups in buckets.items():
        for key, series in groups.items():
            label_text = dict(key) or ""
            edges = [edge for edge, _ in series]
            values = [value for _, value in series]
            if edges != sorted(edges):
                problems.append(f"{family}{label_text}: bucket edges "
                                f"not ascending")
            if any(b < a for a, b in zip(values, values[1:])):
                problems.append(f"{family}{label_text}: bucket counts "
                                f"not cumulative")
            if not edges or not math.isinf(edges[-1]):
                problems.append(f"{family}{label_text}: missing +Inf "
                                f"bucket")
            else:
                count = counts.get(family, {}).get(key)
                if count is None:
                    problems.append(f"{family}{label_text}: histogram "
                                    f"without _count sample")
                elif count != values[-1]:
                    problems.append(
                        f"{family}{label_text}: _count {count} != +Inf "
                        f"bucket {values[-1]}")
    return problems


# ----------------------------------------------------------------------
# summarize / diff
# ----------------------------------------------------------------------
def summarize_rows(document: dict) -> List[dict]:
    """One summary row per series (the ``summarize`` CLI table)."""
    rows = []
    for series in document.get("series", []):
        labels = ",".join(f"{k}={v}" for k, v
                          in sorted(series["labels"].items()))
        row = {"name": series["name"], "kind": series["kind"],
               "labels": labels, "points": len(series["points"])}
        if series["kind"] == "histogram":
            final = series["final"]
            count = final["count"]
            row["final"] = count
            row["detail"] = (
                f"count={count} sum={final['sum']:.6g} "
                + (f"mean={final['sum'] / count:.6g}" if count
                   else "mean=-"))
        else:
            row["final"] = series["final"]
            row["detail"] = f"final={_fmt_value(series['final'])}"
        rows.append(row)
    return rows


def summary_text(document: dict) -> str:
    """Human-readable per-series summary table."""
    meta = document.get("meta", {})
    rows = summarize_rows(document)
    points = sum(row["points"] for row in rows)
    lines = [f"metrics: {len(rows)} series, {points} sample points, "
             f"window={meta.get('window', '?')}"]
    for key in sorted(meta):
        if key in ("window", "series", "metrics_version"):
            continue
        lines.append(f"  {key:<16} {meta[key]}")
    if rows:
        width = max(len(f"{r['name']}{{{r['labels']}}}") for r in rows)
        lines.append(f"{'series':<{width}} {'kind':<9} "
                     f"{'points':>6}  final")
        for row in rows:
            shown = f"{row['name']}{{{row['labels']}}}"
            lines.append(f"{shown:<{width}} {row['kind']:<9} "
                         f"{row['points']:>6}  {row['detail']}")
    return "\n".join(lines)


def diff_documents(left: dict, right: dict) -> List[str]:
    """Series-level differences between two artifacts; [] == identical
    (meta is ignored — it carries per-run identity on purpose)."""
    def index(document):
        return {(s["name"], tuple(sorted(s["labels"].items()))): s
                for s in document.get("series", [])}

    a, b = index(left), index(right)
    problems: List[str] = []

    def shown(key):
        name, labels = key
        return name + ("{" + ",".join(f"{k}={v}" for k, v in labels)
                       + "}" if labels else "")

    for key in sorted(a.keys() - b.keys()):
        problems.append(f"only in left: {shown(key)}")
    for key in sorted(b.keys() - a.keys()):
        problems.append(f"only in right: {shown(key)}")
    for key in sorted(a.keys() & b.keys()):
        one, two = a[key], b[key]
        if one["kind"] != two["kind"]:
            problems.append(f"{shown(key)}: kind {one['kind']} != "
                            f"{two['kind']}")
            continue
        if one["final"] != two["final"]:
            problems.append(f"{shown(key)}: final {one['final']} != "
                            f"{two['final']}")
        if one["points"] != two["points"]:
            count = (f"{len(one['points'])} vs {len(two['points'])} "
                     f"points")
            problems.append(f"{shown(key)}: sample streams differ "
                            f"({count})")
    return problems
