"""Ablation A6 — lock-free snapshot reads vs read locks.

§4 proposes multiversion timestamps so transactions "can read the
proper versions of distributed data objects".  Served as lock-free
snapshots, read-only transactions never block and never raise ceilings
against writers; this sweep quantifies the scheduling benefit over the
classic read-lock path under the local ceiling architecture.
"""

from repro.bench import format_snapshot_reads, run_snapshot_reads


def test_snapshot_reads(run_sweep, replications):
    series = run_sweep(run_snapshot_reads, replications=replications)
    print()
    print(format_snapshot_reads(series))

    for row in series:
        # Snapshots never miss more than locking readers, and the
        # benefit is strictly positive somewhere in the sweep.
        assert row["missed_snapshot"] <= row["missed_locking"] + 1.0
        assert row["throughput_snapshot"] >= \
            0.9 * row["throughput_locking"]
    assert any(row["missed_snapshot"] < row["missed_locking"] - 0.5
               for row in series)
