"""Ablation A3 — database size (conflict probability) sweep.

The paper omitted this experiment "because they only confirm and not
increase the knowledge yielded by other experiments": shrinking the
database raises the conflict rate exactly like growing the transaction
size does.  This sweep confirms that claim holds in the reproduction:
2PL deadlocks and misses fall as the database grows, the ceiling
protocol stays deadlock-free throughout.
"""

from repro.bench import format_dbsize, run_dbsize_sweep


def test_dbsize_sweep(run_sweep, replications):
    series = run_sweep(run_dbsize_sweep, replications=replications)
    print()
    print(format_dbsize(series))

    smallest, largest = series[0], series[-1]
    # More objects -> fewer conflicts -> fewer 2PL deadlocks and misses.
    assert largest["deadlocks_L"] < smallest["deadlocks_L"]
    assert largest["missed_L"] < smallest["missed_L"]
    # The confirmation the paper cites: the ordering at high conflict
    # matches the size-sweep result (C beats L), and the advantage
    # shrinks as conflicts vanish.
    assert smallest["missed_L"] > smallest["missed_C"]
