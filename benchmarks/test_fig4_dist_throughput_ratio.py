"""Figure 4 — Transaction Throughput Ratio (local / global ceiling).

Paper claims reproduced here:
- "Even without considering the communication delay ... the local
  ceiling approach achieves the throughput between 1.5 and 3 times
  higher than that of the global ceiling approach, over the wide range
  of transaction mix";
- "If we consider communication delays, this performance ratio will
  increase accordingly to the communication delay".
"""

from repro.bench import FIG4_DELAYS, format_fig4, run_fig4


def test_fig4_throughput_ratio(run_sweep, replications):
    series = run_sweep(run_fig4, replications=replications)
    print()
    print(format_fig4(series))

    # At zero delay the ratio exceeds ~1.5x on the update-heavy mixes.
    update_heavy = [row for row in series if row["mix"] <= 0.25]
    assert all(row["ratio_d0"] > 1.3 for row in update_heavy)

    # The ratio grows with the communication delay for every mix.
    for row in series:
        assert row["ratio_d2"] > row["ratio_d0"]
        assert row["ratio_d8"] >= row["ratio_d2"] * 0.8  # saturation ok
        assert row["ratio_d8"] > row["ratio_d0"]
