"""Ablation A2 — basic priority inheritance vs the ceiling protocol.

§3.1 argues inheritance alone is "inadequate because the blocking
duration for a transaction, though bounded, can still be substantial
due to the potential chain of blocking" — and deadlocks remain.  This
sweep compares P (no inheritance), PI (inheritance) and C (ceiling) on
the Figure-2/3 workload.
"""

from repro.bench import format_inheritance, run_inheritance_vs_ceiling


def test_inheritance_vs_ceiling(run_sweep, replications):
    series = run_sweep(run_inheritance_vs_ceiling,
                       replications=replications)
    print()
    print(format_inheritance(series))

    largest = series[-1]
    # At the largest size the ceiling protocol misses fewest deadlines;
    # inheritance alone does not rescue 2PL from deadlock-driven misses.
    assert largest["missed_C"] < largest["missed_PI"]
    assert largest["missed_C"] < largest["missed_P"]
    # Inheritance is no worse than plain P (it only shortens inversion).
    assert largest["missed_PI"] <= largest["missed_P"] + 10.0
