"""Ablation A4 — temporal consistency of replicated views (§4's future
work): how stale do secondary copies get under the local-ceiling
architecture, as a function of the communication delay, and the
multiversion mechanism that bounds it.
"""

from repro.bench import format_temporal, run_temporal_staleness


def test_temporal_staleness(run_sweep, replications):
    series = run_sweep(run_temporal_staleness,
                       replications=max(3, replications // 2))
    print()
    print(format_temporal(series))

    by_delay = {row["delay"]: row for row in series}
    # A copy cannot become visible faster than one network hop: the
    # mean apply latency is bounded below by the communication delay.
    for row in series:
        assert row["mean_apply_latency"] >= row["delay"] - 1e-9
    # Latency (and hence temporal inconsistency) grows with the delay.
    assert by_delay[10.0]["mean_apply_latency"] > \
        by_delay[2.0]["mean_apply_latency"] + 5.0
    # Peak staleness is dominated by worst-case lock contention at the
    # applying site (present at every delay), so it only needs to be
    # comparable across delays — the delay-driven component shows up in
    # the latency means above.
    assert by_delay[10.0]["peak_staleness"] >= \
        by_delay[0.0]["peak_staleness"] - 15.0
    # The local approach's misses stay roughly flat across delays —
    # temporal inconsistency, not deadline misses, is the price paid.
    assert abs(by_delay[10.0]["percent_missed"]
               - by_delay[0.0]["percent_missed"]) < 20.0
