"""Benchmark harness configuration.

Each benchmark regenerates one figure (or ablation) of the paper: it
runs the sweep once under pytest-benchmark timing (rounds=1 — the sweep
itself already averages over seeded replications), prints the series as
a text table, and asserts the paper's qualitative shape.

Environment knobs:

- ``REPRO_BENCH_REPS`` — seeded replications per sweep point (default
  5; the paper used 10 — raise it for final numbers, lower it for
  smoke runs).
- ``REPRO_JOBS`` — worker processes for the repro.exec engine behind
  every sweep (default 1 = serial).  The harness prints an ``[exec]``
  trailer under each table showing units run, cache hits and worker
  utilization for the measured sweep.
- ``REPRO_CACHE_DIR`` — turn on the on-disk result cache so repeated
  benchmark sessions only compute missing sweep points (cache hits are
  visible in the trailer; remember the timing then measures cache
  reads, not simulation).
"""

import os

import pytest

from repro.exec import resolve_jobs, session_counters


@pytest.fixture(scope="session")
def replications():
    return int(os.environ.get("REPRO_BENCH_REPS", "5"))


@pytest.fixture(scope="session")
def jobs():
    """Worker processes for the execution engine (``REPRO_JOBS``)."""
    return resolve_jobs(None)


@pytest.fixture
def run_sweep(benchmark, jobs):
    """Run ``fn`` once under the benchmark timer and return its value.

    The sweep inherits ``REPRO_JOBS``/``REPRO_CACHE_DIR`` through the
    engine's environment resolution; the printed ``[exec]`` line makes
    the pool and cache activity visible next to each emitted table.
    """

    def runner(fn, *args, **kwargs):
        before = session_counters()
        value = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                   rounds=1, iterations=1)
        delta = {key: count - before[key]
                 for key, count in session_counters().items()}
        if delta["units"]:
            print(f"[exec] jobs={jobs} units={delta['units']} "
                  f"computed={delta['computed']} "
                  f"cache_hits={delta['cache_hits']} "
                  f"retries={delta['retries']} "
                  f"failures={delta['failures']}")
        return value

    return runner
