"""Benchmark harness configuration.

Each benchmark regenerates one figure (or ablation) of the paper: it
runs the sweep once under pytest-benchmark timing (rounds=1 — the sweep
itself already averages over seeded replications), prints the series as
a text table, and asserts the paper's qualitative shape.

Set ``REPRO_BENCH_REPS`` to change the number of seeded replications
per sweep point (default 5; the paper used 10 — raise it for final
numbers, lower it for smoke runs).
"""

import os

import pytest


@pytest.fixture(scope="session")
def replications():
    return int(os.environ.get("REPRO_BENCH_REPS", "5"))


@pytest.fixture
def run_sweep(benchmark):
    """Run ``fn`` once under the benchmark timer and return its value."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
