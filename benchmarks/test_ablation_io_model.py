"""Ablation A7 — the parallel-I/O assumption.

"There are few conflicts for the small transactions in the two-phase
locking protocol, and the concurrency is fully achieved with an
assumption of parallel I/O processing."  This sweep replaces the
infinite-server I/O stage with bounded disk arrays: as the I/O
concurrency shrinks, 2PL loses the advantage the assumption gave it,
while the ceiling protocol's near-serial pipeline barely notices.
"""

from repro.bench import format_io_models, run_io_models


def test_io_model_sensitivity(run_sweep, replications):
    series = run_sweep(run_io_models, replications=replications)
    print()
    print(format_io_models(series))

    by_servers = {row["io_servers"]: row for row in series}
    unlimited = by_servers["inf"]
    single = by_servers[1]
    # With parallel I/O, L at this size is comparable to or ahead of C.
    assert unlimited["throughput_L"] >= 0.8 * unlimited["throughput_C"]
    # A single disk hurts L far more than C (relative to unlimited).
    l_loss = 1.0 - single["throughput_L"] / unlimited["throughput_L"]
    c_loss = 1.0 - single["throughput_C"] / unlimited["throughput_C"]
    assert l_loss > c_loss
    # And misses: bounding I/O increases L's misses.
    assert single["missed_L"] >= unlimited["missed_L"]
