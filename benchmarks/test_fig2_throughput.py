"""Figure 2 — Transaction Throughput (single site, size sweep).

Paper claims reproduced here:
- "As the transaction size increases, there is little impact on the
  throughput of the priority ceiling protocol" — C is stable over the
  sweep;
- "the performance of the two-phase locking protocol with or without
  priority degrades very rapidly" — P and L collapse at large sizes,
  crossing below C.
"""

from repro.bench import format_fig2, run_fig2_fig3

# Shared across the fig2/fig3 modules within one pytest session so the
# (identical) sweep is computed once.
_CACHE = {}


def fig23_series(replications):
    if replications not in _CACHE:
        _CACHE[replications] = run_fig2_fig3(replications=replications)
    return _CACHE[replications]


def test_fig2_throughput(run_sweep, replications):
    series = run_sweep(fig23_series, replications)
    print()
    print(format_fig2(series))

    # Shape assertions: C stable (max/min bounded), P/L collapse.
    c_values = [row["throughput_C"] for row in series if row["size"] >= 8]
    assert max(c_values) < 4.0 * min(c_values), \
        "C throughput should be stable across sizes"
    l_small = series[1]["throughput_L"]   # size 5
    l_large = series[-1]["throughput_L"]  # size 20
    assert l_large < 0.5 * l_small, \
        "L throughput should degrade rapidly with size"
    assert series[-1]["throughput_C"] > series[-1]["throughput_L"], \
        "C should beat L at the largest size"
    assert series[-1]["throughput_C"] > series[-1]["throughput_P"], \
        "C should beat P at the largest size"
