"""Ablation A5 — 2PL deadlock-resolution policies.

The paper's model has no deadlock resolution: cycles persist until a
member's hard deadline aborts it ("transactions that miss the deadline
are aborted, and disappear from the system").  This sweep compares that
model ("none") against continuous detection with restart under three
victim-selection rules, quantifying how much of 2PL's Figure-3 collapse
is attributable to unresolved deadlocks.
"""

from repro.bench import format_deadlock_policies, run_deadlock_policies


def test_deadlock_policies(run_sweep, replications):
    series = run_sweep(run_deadlock_policies, replications=replications)
    print()
    print(format_deadlock_policies(series))

    by_policy = {row["policy"]: row for row in series}
    # Detect-and-restart beats wait-until-deadline on misses.
    none_missed = by_policy["none"]["percent_missed"]
    for policy in ("requester", "lowest_priority", "youngest"):
        assert by_policy[policy]["percent_missed"] <= none_missed
        assert by_policy[policy]["restarts"] > 0
    # The no-resolution model performs no restarts at all.
    assert by_policy["none"]["restarts"] == 0
