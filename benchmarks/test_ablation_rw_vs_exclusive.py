"""Ablation A1 — read/write vs exclusive lock semantics (§5's open
question: "the use of read and write semantics of a lock may lead to
worse performance in terms of schedulability than the use of exclusive
semantics ... Is it necessarily true?").

On a read-heavy mixed workload, read/write semantics (C) admit
concurrent readers whenever no active writer declares the object, while
exclusive semantics (Cx) serialize them.  The sweep quantifies the cost
of exclusivity for throughput and deadline misses.
"""

from repro.bench import format_rw_vs_exclusive, run_rw_vs_exclusive


def test_rw_vs_exclusive(run_sweep, replications):
    series = run_sweep(run_rw_vs_exclusive, replications=replications)
    print()
    print(format_rw_vs_exclusive(series))

    # On a read-heavy mix, read/write semantics should not lose to
    # exclusive semantics at any size, and should win at the largest.
    for row in series:
        assert row["throughput_C"] >= 0.8 * row["throughput_Cx"]
    largest = series[-1]
    assert largest["missed_C"] <= largest["missed_Cx"] + 5.0
