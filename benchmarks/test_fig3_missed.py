"""Figure 3 — Percentage of Deadline-Missing Transactions.

Paper claims reproduced here:
- "the percentage of deadline-missing transactions increases sharply
  for the two-phase locking protocol as the transaction size increases"
  (deadlock probability grows ~size^4 [Gray81]);
- "the percentage of deadline-missing transactions increases more
  slowly ... in the priority ceiling protocol" (no deadlocks).
"""

from repro.bench import format_fig3

from test_fig2_throughput import fig23_series


def test_fig3_missed(run_sweep, replications):
    series = run_sweep(fig23_series, replications)
    print()
    print(format_fig3(series))

    largest = series[-1]   # size 20
    mid = series[3]        # size 11
    # 2PL misses rise sharply and overtake C at large sizes.
    assert largest["missed_L"] > largest["missed_C"]
    assert largest["missed_P"] > largest["missed_C"]
    assert largest["missed_L"] > 2.0 * mid["missed_L"] or \
        largest["missed_L"] > 80.0
    # The driver: deadlocks grow superlinearly for 2PL, stay zero for C.
    assert largest["deadlocks_L"] > 4.0 * max(series[1]["deadlocks_L"],
                                              1.0)
    assert all(row["deadlocks_C"] == 0 for row in series)
