"""Ablation A8 — fault injection: message loss and site crashes.

The paper's distributed experiments assume a fair-weather network;
this sweep measures what each architecture gives up when messages are
lost and sites crash.  The zero-loss / zero-downtime points run the
historical fault-free code path, so the first row of each sweep
doubles as the regression baseline.
"""

from repro.bench import format_fault_ablation, run_fault_ablation


def test_fault_ablation(run_sweep, replications):
    series = run_sweep(run_fault_ablation,
                       loss_rates=(0.0, 0.05, 0.1),
                       crash_downtimes=(0.0, 40.0),
                       replications=replications,
                       n_transactions=120)
    print()
    print(format_fault_ablation(series))

    loss = [row for row in series if row["kind"] == "loss"]
    crash = [row for row in series if row["kind"] == "crash"]
    assert [row["x"] for row in loss] == [0.0, 0.05, 0.1]
    assert [row["x"] for row in crash] == [0.0, 40.0]

    for row in series:
        # Both architectures completed every sweep point: the counters
        # are sane and nothing hung (a hung kernel would never return).
        assert 0.0 <= row["local_missed"] <= 100.0
        assert 0.0 <= row["global_missed"] <= 100.0
        assert row["local_throughput"] >= 0.0
        assert row["global_throughput"] >= 0.0

    # The zero-fault points report a healthy network...
    assert loss[0]["messages_lost"] == 0.0
    assert crash[0]["messages_lost"] == 0.0
    # ...and injected loss is visible in the accounting.
    assert all(row["messages_lost"] > 0.0 for row in loss[1:])

    # Faults only hurt: no architecture gets *better* under loss or
    # downtime (small replication noise tolerated).
    for column in ("local_missed", "global_missed"):
        assert loss[-1][column] >= loss[0][column] - 2.0
        assert crash[-1][column] >= crash[0][column] - 2.0
    # The crash scenario visibly degrades the local architecture
    # (dead sites refuse arrivals and strand replicas).
    assert crash[-1]["local_missed"] > crash[0]["local_missed"]
