"""Figure 6 — Deadline-Missing Percentage vs Transaction Mix.

Paper claims reproduced here:
- "the performance difference in terms of deadline-missing transactions
  between two approaches increases as the communication delay increases
  over a wide range of transaction mix";
- "As the proportion of read-only transactions increases, the number of
  deadline-missing transactions decreases since the conflict rate will
  decrease".
"""

from repro.bench import FIG6_DELAYS, format_fig6, run_fig6


def test_fig6_missed_vs_mix(run_sweep, replications):
    series = run_sweep(run_fig6, replications=replications)
    print()
    print(format_fig6(series))

    # Misses fall as the read-only share rises (both modes, both
    # delays) - compare the extreme mixes.
    first, last = series[0], series[-1]
    for delay in FIG6_DELAYS:
        for mode in ("local", "global"):
            key = f"{mode}_d{delay:g}"
            assert last[key] <= first[key] + 1e-9

    # The local-vs-global gap widens with the delay on every mix.
    for row in series:
        gap_small = row[f"global_d{FIG6_DELAYS[0]:g}"] - \
            row[f"local_d{FIG6_DELAYS[0]:g}"]
        gap_large = row[f"global_d{FIG6_DELAYS[1]:g}"] - \
            row[f"local_d{FIG6_DELAYS[1]:g}"]
        assert gap_large >= gap_small - 5.0  # widen (noise margin)
        assert gap_large > 0.0
