"""Figure 5 — Deadline Missing Ratio (global / local ceiling).

Paper claims reproduced here:
- "In the range of small communication delays (up to 2 time units),
  this ratio increases rapidly, and then rather slowly after that";
- "As the communication delay increases, the performance ratio
  increases beyond 16".
"""

from repro.bench import format_fig5, run_fig5


def test_fig5_missed_ratio(run_sweep, replications):
    series = run_sweep(run_fig5, replications=replications)
    print()
    print(format_fig5(series))

    by_delay = {row["delay"]: row for row in series}
    # Rapid rise over delays 0..2.
    assert by_delay[2.0]["ratio"] > 2.0 * by_delay[0.0]["ratio"] or \
        by_delay[2.0]["ratio"] - by_delay[0.0]["ratio"] > 10.0
    # Slower growth afterwards: the 2->10 increment is smaller than
    # the 0->2 increment.
    early_growth = by_delay[2.0]["ratio"] - by_delay[0.0]["ratio"]
    late_growth = by_delay[10.0]["ratio"] - by_delay[2.0]["ratio"]
    assert late_growth < early_growth
    # The ratio exceeds 16 at large delays.
    assert max(row["ratio"] for row in series) > 16.0
    # Global misses keep rising with delay; local stays roughly flat.
    assert by_delay[10.0]["global_missed"] > \
        by_delay[0.0]["global_missed"]
    assert abs(by_delay[10.0]["local_missed"]
               - by_delay[0.0]["local_missed"]) < 20.0
