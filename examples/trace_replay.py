#!/usr/bin/env python3
"""Durable workload traces: generate once, replay anywhere.

Generates a workload, saves it as a JSON trace, reloads it, and replays
the *identical* transaction stream against every protocol — the
common-random-numbers methodology behind the paper's protocol
comparisons, made portable across runs and versions.

    python examples/trace_replay.py [--trace FILE]
"""

import argparse
import os
import tempfile

from repro import SingleSiteConfig, SingleSiteSystem, WorkloadConfig
from repro.core import TimingConfig
from repro.core.reporting import format_table
from repro.kernel.rng import RngStreams
from repro.txn import (CostModel, WorkloadGenerator, dump_schedule,
                       load_schedule)

PROTOCOLS = ("L", "P", "PI", "C")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", default=None,
                        help="trace file path (default: a temp file)")
    args = parser.parse_args()

    trace_path = args.trace or os.path.join(tempfile.gettempdir(),
                                            "repro-trace.json")

    # 1. Generate a workload and persist it.
    generator = WorkloadGenerator(
        RngStreams(2024), db_size=200, mean_interarrival=25.0,
        transaction_size=14, size_jitter=4, n_transactions=120)
    schedule = generator.generate()
    dump_schedule(schedule, trace_path)
    print(f"saved {len(schedule)} transactions to {trace_path}")

    # 2. Reload it and replay under every protocol.
    replayed = load_schedule(trace_path)
    assert replayed == schedule, "round trip must be exact"

    config_base = SingleSiteConfig(
        db_size=200,
        workload=WorkloadConfig(n_transactions=len(replayed),
                                mean_interarrival=25.0,
                                transaction_size=14),
        timing=TimingConfig(slack_factor=8.0),
        costs=CostModel(cpu_per_object=1.0, io_per_object=2.0),
        seed=7)

    rows = []
    import dataclasses
    for protocol in PROTOCOLS:
        config = dataclasses.replace(config_base, protocol=protocol)
        system = SingleSiteSystem(config, schedule=replayed)
        monitor = system.run()
        rows.append([protocol, monitor.throughput(),
                     monitor.percent_missed,
                     system.cc.stats.deadlocks])

    print()
    print(format_table(
        ["protocol", "objects/sec", "% missed", "deadlocks"], rows,
        title=f"Identical {len(replayed)}-transaction trace replayed "
              f"under each protocol"))
    print()
    print("Because every protocol saw byte-identical arrivals, the")
    print("differences are attributable purely to the locking protocol.")


if __name__ == "__main__":
    main()
