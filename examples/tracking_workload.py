#!/usr/bin/env python3
"""Distributed tracking: the paper's motivating application.

"Each radar station maintains its view and makes it available to other
sites in the network."  Three sites each own a block of track objects
(their radar picture).  Periodic update transactions refresh the local
tracks every scan; aperiodic read-only queries (threat evaluation,
display) arrive at random sites and read any tracks from the local
replicated view.

Runs under the local-ceiling architecture (single-writer/multiple-
reader, asynchronous replica propagation) and reports per-class
deadline behaviour plus how stale the cross-site track views get.

    python examples/tracking_workload.py
"""

from repro import DistributedConfig, TimingConfig, WorkloadConfig
from repro.db.locks import LockMode
from repro.dist import DistributedSystem
from repro.kernel.rng import RngStreams
from repro.txn import (CostModel, PeriodicStream, WorkloadGenerator,
                       merge_schedules)

N_SITES = 3
TRACKS_PER_SITE = 20
SCAN_PERIOD = 30.0       # radar scan interval (time units)
TRACKS_PER_SCAN = 6      # tracks refreshed per scan transaction
HORIZON = 600.0          # simulated mission time
QUERY_INTERARRIVAL = 4.0
QUERY_SIZE = 5


def build_schedule(system: DistributedSystem):
    """Periodic scan updates per site + aperiodic read-only queries."""
    scans = []
    for site in range(N_SITES):
        tracks = system.catalog.primaries_at(site)[:TRACKS_PER_SCAN]
        operations = [(oid, LockMode.WRITE) for oid in tracks]
        stream = PeriodicStream(operations, period=SCAN_PERIOD,
                                site=site,
                                first_release=site * 2.0)  # phase shift
        scans.append(stream.releases(HORIZON))

    queries = WorkloadGenerator(
        RngStreams(7), db_size=N_SITES * TRACKS_PER_SITE,
        mean_interarrival=QUERY_INTERARRIVAL,
        transaction_size=QUERY_SIZE,
        n_transactions=int(HORIZON / QUERY_INTERARRIVAL),
        read_only_fraction=1.0, n_sites=N_SITES,
        catalog=system.catalog).generate()

    return merge_schedules(*scans, queries)


def main() -> None:
    config = DistributedConfig(
        mode="local", comm_delay=2.0,
        db_size=N_SITES * TRACKS_PER_SITE,
        workload=WorkloadConfig(n_transactions=1),  # replaced below
        timing=TimingConfig(slack_factor=6.0),
        costs=CostModel(cpu_per_object=0.5, io_per_object=0.0,
                        apply_cpu=0.25),
        seed=7, temporal_versions=True)

    # Build once to get the catalog, then rebuild with the real schedule.
    prototype = DistributedSystem(config, schedule=[])
    schedule = build_schedule(prototype)
    system = DistributedSystem(config, schedule=schedule)
    monitor = system.run(until=HORIZON * 2)

    periodic = [r for r in monitor.records if not r.read_only]
    queries = [r for r in monitor.records if r.read_only]

    print("Distributed tracking under the local ceiling architecture")
    print(f"  sites: {N_SITES}, tracks: {config.db_size}, "
          f"scan period: {SCAN_PERIOD}, comm delay: "
          f"{config.comm_delay}")
    print()
    print(f"  scan updates released : {len(periodic)}")
    missed_scans = sum(1 for r in periodic if r.missed)
    print(f"  scans missing deadline: {missed_scans} "
          f"({100.0 * missed_scans / max(1, len(periodic)):.1f}%)")
    print(f"  queries processed     : {len(queries)}")
    missed_queries = sum(1 for r in queries if r.missed)
    print(f"  queries missing       : {missed_queries} "
          f"({100.0 * missed_queries / max(1, len(queries)):.1f}%)")
    blocked = [r.blocked_time for r in queries if r.committed]
    if blocked:
        print(f"  mean query block time : "
              f"{sum(blocked) / len(blocked):.2f} time units")
    print()
    # Temporal consistency of the cross-site views: a remote track can
    # be at most one scan + one network hop old in steady state.
    stale = system.max_staleness()
    print(f"  view staleness at end : {stale:.2f} time units")
    print(f"  replica messages sent : {system.network.messages_sent}")
    print()
    print("Every track write stays on its owning radar site (R2); the")
    print("other sites read their historical copies (R3), so no lock")
    print("ever crosses the network and queries never block on remote")
    print("scans - at the price of bounded view staleness.")


if __name__ == "__main__":
    main()
