#!/usr/bin/env python3
"""Global vs local ceiling managers on a 3-site network (Section 4).

Sweeps the communication delay at a 50/50 transaction mix and prints
throughput, deadline misses and the two ratios the paper plots in
Figures 4 and 5.

    python examples/distributed_ceiling.py [--replications N]
"""

import argparse
import dataclasses

from repro import (DistributedConfig, TimingConfig, WorkloadConfig,
                   replicate)
from repro.core.metrics import missed_ratio, throughput_ratio
from repro.core.reporting import format_table
from repro.txn import CostModel

DELAYS = (0.0, 2.0, 5.0, 10.0)


def config_for(mode: str, delay: float) -> DistributedConfig:
    return DistributedConfig(
        mode=mode, comm_delay=delay, db_size=300,
        workload=WorkloadConfig(n_transactions=120,
                                mean_interarrival=3.0,
                                transaction_size=6, size_jitter=2,
                                read_only_fraction=0.5),
        timing=TimingConfig(slack_factor=10.0),
        costs=CostModel(cpu_per_object=1.0, io_per_object=0.0))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--replications", type=int, default=3)
    args = parser.parse_args()

    rows = []
    for delay in DELAYS:
        local = replicate(config_for("local", delay),
                          replications=args.replications)
        global_ = replicate(config_for("global", delay),
                            replications=args.replications)
        rows.append([
            delay,
            local["throughput"], global_["throughput"],
            throughput_ratio(local["throughput"],
                             global_["throughput"]),
            local["percent_missed"], global_["percent_missed"],
            missed_ratio(global_["percent_missed"],
                         local["percent_missed"]),
        ])

    print(format_table(
        ["delay", "local thr", "global thr", "thr ratio",
         "local %missed", "global %missed", "missed ratio"],
        rows,
        title="Global vs local ceiling, 3 fully-connected sites, "
              "memory-resident DB, 50/50 mix"))
    print()
    print("The local approach commits more and misses fewer deadlines")
    print("at every delay; the gap widens with the delay because every")
    print("lock acquisition in the global approach crosses the network")
    print("while the local approach only ships post-commit updates.")


if __name__ == "__main__":
    main()
