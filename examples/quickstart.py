#!/usr/bin/env python3
"""Quickstart: run one single-site real-time database simulation.

Builds the paper's single-site system (priority ceiling protocol,
earliest-deadline-first priorities, hard deadlines), runs a workload of
200 update transactions, and prints the Performance Monitor's summary —
the statistics of §3.3.

    python examples/quickstart.py
"""

from repro import (CostModel, SingleSiteConfig, SingleSiteSystem,
                   TimingConfig, WorkloadConfig)


def main() -> None:
    config = SingleSiteConfig(
        protocol="C",                 # the priority ceiling protocol
        db_size=200,
        workload=WorkloadConfig(
            n_transactions=200,
            mean_interarrival=25.0,   # heavy load at this size
            transaction_size=14,      # objects accessed per transaction
            size_jitter=4),
        timing=TimingConfig(slack_factor=8.0),   # deadline ∝ size
        costs=CostModel(cpu_per_object=1.0, io_per_object=2.0),
        seed=42)

    system = SingleSiteSystem(config)
    monitor = system.run()

    print("Single-site run - priority ceiling protocol (C)")
    print(f"  transactions processed : {monitor.processed}")
    print(f"  committed              : {monitor.committed}")
    print(f"  deadline misses        : {monitor.missed} "
          f"({monitor.percent_missed:.1f}%)")
    print(f"  normalised throughput  : {monitor.throughput():.3f} "
          f"objects/second")
    print(f"  mean response time     : "
          f"{monitor.mean_response_time():.2f} time units")
    print(f"  mean blocked interval  : "
          f"{monitor.mean_blocked_time():.2f} time units")
    print(f"  CPU utilisation        : "
          f"{system.cpu.utilization(system.kernel.now):.2f}")
    stats = system.cc.stats
    print(f"  lock requests          : {stats.requests} "
          f"({stats.immediate_grants} immediate, {stats.blocks} blocked)")
    print(f"  ceiling blocks         : {stats.ceiling_blocks} "
          f"(blocked with no direct conflict - the 'insurance premium')")
    print(f"  deadlocks              : {stats.deadlocks} "
          f"(always 0 under the ceiling protocol)")


if __name__ == "__main__":
    main()
