#!/usr/bin/env python3
"""Protocol shootout: L vs P vs PI vs C across transaction sizes.

Reproduces the Figure-2/3 experiment at reduced resolution and prints
both tables, plus the priority-inheritance protocol the paper discusses
in §3.1 (not plotted there).

    python examples/protocol_comparison.py [--replications N]
"""

import argparse

from repro import (SingleSiteConfig, TimingConfig, WorkloadConfig,
                   compare_protocols)
from repro.core.reporting import format_table
from repro.txn import CostModel

PROTOCOLS = ("L", "P", "PI", "C")
SIZES = (2, 8, 14, 20)


def config_for(size: int) -> SingleSiteConfig:
    return SingleSiteConfig(
        db_size=200,
        workload=WorkloadConfig(n_transactions=150,
                                mean_interarrival=25.0,
                                transaction_size=size,
                                size_jitter=max(1, size // 3)),
        timing=TimingConfig(slack_factor=8.0),
        costs=CostModel(cpu_per_object=1.0, io_per_object=2.0))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--replications", type=int, default=3,
                        help="seeded runs averaged per point")
    args = parser.parse_args()

    throughput_rows = []
    missed_rows = []
    for size in SIZES:
        results = compare_protocols(config_for(size), PROTOCOLS,
                                    replications=args.replications)
        throughput_rows.append(
            [size] + [results[p]["throughput"] for p in PROTOCOLS])
        missed_rows.append(
            [size] + [results[p]["percent_missed"] for p in PROTOCOLS])

    headers = ["size"] + list(PROTOCOLS)
    print(format_table(headers, throughput_rows,
                       title="Normalised throughput (objects/sec)"))
    print()
    print(format_table(headers, missed_rows,
                       title="Deadline-missing transactions (%)"))
    print()
    print("Expected shape (paper, Figures 2-3): C is stable across")
    print("sizes; P and L are ahead at small sizes but collapse beyond")
    print("the crossover as conflicts and deadlocks explode; PI sits")
    print("between P and C.")


if __name__ == "__main__":
    main()
