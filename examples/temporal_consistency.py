#!/usr/bin/env python3
"""Temporally consistent snapshot reads over replicated data (§4).

The local-ceiling architecture trades freshness for responsiveness:
secondary copies are historical.  Section 4 sketches the remedy —
multiversion data objects with timestamps, so "transactions can read
the proper versions of distributed data objects, and ensure that
decisions are based on temporally consistent data".

This example runs an all-update workload with ``temporal_versions``
enabled, then demonstrates the difference between (a) reading each
site's latest copies (mutually inconsistent ages) and (b) reading a
multiversion snapshot "as of" a common timestamp (consistent by
construction).

    python examples/temporal_consistency.py
"""

from repro import DistributedConfig, TimingConfig, WorkloadConfig
from repro.dist import DistributedSystem
from repro.txn import CostModel


def main() -> None:
    config = DistributedConfig(
        mode="local", comm_delay=6.0, db_size=60,
        workload=WorkloadConfig(n_transactions=120,
                                mean_interarrival=2.0,
                                transaction_size=4, size_jitter=1,
                                read_only_fraction=0.0),
        timing=TimingConfig(slack_factor=12.0),
        costs=CostModel(cpu_per_object=1.0, io_per_object=0.0),
        seed=13, temporal_versions=True)

    system = DistributedSystem(config)

    # Freeze the run midway to inspect the in-flight state.
    midpoint = (config.workload.n_transactions
                * config.workload.mean_interarrival / 2)
    system.run(until=midpoint)

    print(f"State at virtual time {midpoint:.0f} "
          f"(comm delay = {config.comm_delay}):")
    print()

    # (a) Latest-copy reads: per-object ages differ across sites.
    # Prefer objects whose copies currently disagree (updates in
    # flight); fall back to any written object.
    divergent = [
        oid for oid in range(config.db_size)
        if len({site.database.object(oid).version_ts
                for site in system.sites}) > 1]
    written = [oid for oid in range(config.db_size)
               if system.sites[0].database.object(oid).version_ts > 0]
    sample = (divergent + [oid for oid in written
                           if oid not in divergent])[:5]
    print("  latest-copy ages per site (time units behind 'now'):")
    for oid in sample:
        ages = []
        for site in system.sites:
            version_ts = site.database.object(oid).version_ts
            ages.append(f"{midpoint - version_ts:6.1f}")
        print(f"    object {oid:3d}: " + "  ".join(ages))
    worst = system.max_staleness()
    print(f"  worst copy staleness: {worst:.1f} time units")
    print()

    # (b) Snapshot reads: pick a snapshot time far enough in the past
    # that every site's version store has caught up, then read every
    # object "as of" it - a temporally consistent cross-site view.
    snapshot_time = midpoint - 2 * config.comm_delay - 5.0
    print(f"  snapshot read as of t={snapshot_time:.0f}:")
    disagreements = 0
    for oid in range(config.db_size):
        versions = {store.read_as_of(oid, snapshot_time)
                    for store in system.versions}
        if len(versions) > 1:
            disagreements += 1
    print(f"    objects with cross-site disagreement: "
          f"{disagreements} / {config.db_size}")
    print()
    print("Latest-copy reads disagree across sites by up to the")
    print("propagation lag; snapshot reads at a sufficiently old")
    print("timestamp agree everywhere - the time lag is controlled by")
    print("the version timestamps, exactly the mechanism §4 proposes.")

    system.run()  # drain cleanly


if __name__ == "__main__":
    main()
